/**
 * @file
 * Fig 18: host-bandwidth scaling of the sharded SsdArray front-end,
 * 1 to 8 shards, Baseline vs dSSD_f, under a write-heavy workload with
 * forced GC.
 *
 * Every shard is a full independent device (its own FTL, write buffer,
 * GC, channels, and — on dSSD_f — decoupled controllers and fNoC), so
 * aggregate host bandwidth should scale close to linearly with the
 * shard count while per-shard GC interference keeps the same shape the
 * single-device figures show. The queue depth scales with the shard
 * count so the host keeps every shard loaded.
 */

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/harness.hh"
#include "sim/log.hh"

using namespace dssd;
using namespace dssd::bench;

namespace
{

constexpr unsigned kShards[] = {1, 2, 4, 8};
constexpr ArchKind kArchs[] = {ArchKind::Baseline, ArchKind::DSSDNoc};

} // namespace

int
main(int argc, char **argv)
{
    BenchOpts o = BenchOpts::parse(argc, argv);
    JsonSeriesWriter json;
    banner("Fig 18", "host bandwidth scaling with SsdArray shards");

    ExpParams base;
    base.channels = 8;
    base.ways = o.full ? 8 : 4;
    base.planes = 8;
    base.blocksPerPlane = o.full ? 32 : 16;
    base.pagesPerBlock = o.full ? 32 : 16;
    base.requestBytes = 4 * kKiB;
    base.readRatio = 0.0;
    base.sequential = true;
    base.bufferMode = BufferMode::Real;
    base.window = 10 * tickMs;
    base.seed = o.seed;

    std::vector<ExpParams> ps;
    for (ArchKind k : kArchs) {
        for (unsigned s : kShards) {
            ExpParams p = base;
            p.arch = k;
            p.shards = s;
            p.engineThreads = o.engineThreads;
            // Keep per-shard load constant: QD 32 per shard.
            p.queueDepth = 32 * s;
            ps.push_back(p);
        }
    }
    // Observability hooks go to one representative point: dSSD_f at
    // the largest shard count (the configuration the scaling and CI
    // bit-identity claims are about).
    for (ExpParams &p : ps) {
        if (p.arch == ArchKind::DSSDNoc &&
            p.shards == kShards[std::size(kShards) - 1]) {
            p.tracePath = o.trace;
            p.statsPath = o.stats;
        }
    }

    // --timing runs the points serially so each wall-clock number
    // measures one experiment alone; all of it goes to stderr (and the
    // JSON series), never stdout, which must stay byte-identical
    // across --engine-threads values.
    std::vector<ExpResult> rs;
    std::vector<double> wall_ms(ps.size(), 0.0);
    if (o.timing) {
        rs.resize(ps.size());
        for (std::size_t i = 0; i < ps.size(); ++i) {
            auto t0 = std::chrono::steady_clock::now();
            rs[i] = runExperiment(ps[i]);
            auto t1 = std::chrono::steady_clock::now();
            wall_ms[i] =
                std::chrono::duration<double, std::milli>(t1 - t0)
                    .count();
            std::fprintf(stderr,
                         "[timing] %s shards=%u engine-threads=%u: "
                         "%.1f ms\n",
                         archName(ps[i].arch), ps[i].shards,
                         ps[i].engineThreads, wall_ms[i]);
        }
    } else {
        rs = runExperiments(ps, o.resolvedThreads());
    }

    std::printf("\n%-8s  %-7s  %12s  %9s  %12s\n", "config", "shards",
                "IO BW", "scaling", "GC pages/s");
    std::size_t idx = 0;
    for (ArchKind k : kArchs) {
        double bw1 = 0;
        for (unsigned s : kShards) {
            const ExpResult &r = rs[idx++];
            if (s == 1)
                bw1 = r.ioBytesPerSec;
            double scaling = bw1 > 0 ? r.ioBytesPerSec / bw1 : 0;
            std::printf("%-8s  %-7u  %12s  %8.2fx  %12.0f\n",
                        archName(k), s,
                        formatBandwidth(r.ioBytesPerSec).c_str(),
                        scaling, r.gcPagesPerSec);
            json.add(strformat("%s/io_gbps", archName(k)),
                     r.ioBytesPerSec / 1e9);
            json.add(strformat("%s/scaling", archName(k)), scaling);
            if (o.timing) {
                json.add(strformat("%s/wall_ms", archName(k)),
                         wall_ms[idx - 1]);
            }
        }
        rule();
    }
    json.writeIfRequested(o, "fig18_array");
    return 0;
}
