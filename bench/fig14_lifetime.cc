/**
 * @file
 * Fig 14: (a) bad superblocks vs data written for BASELINE / RECYCLED
 * / RESERV; (b) endurance improvement vs block-wear variation, with
 * WAS as the software upper bound; (c) the I/O-latency overhead of
 * WAS's RBER scans as the number of scanned blocks grows.
 *
 * Every EnduranceSim / scan-overhead point is an independent seeded
 * simulation, so each sub-figure fans out over the harness worker
 * pool and prints afterwards in sweep order.
 */

#include <cstdio>
#include <vector>

#include "bench/harness.hh"
#include "reliability/endurance.hh"
#include "sim/log.hh"

using namespace dssd;
using namespace dssd::bench;

namespace
{

EnduranceParams
eparams(bool full, std::uint64_t seed)
{
    EnduranceParams p;
    p.channels = 8;
    p.superblocks = full ? 4096 : 1024;
    p.pagesPerBlock = 32;
    p.pageBytes = 16 * kKiB;
    if (full) {
        p.wear.peMean = 5578.0;
        p.wear.peSigma = 826.9;
    } else {
        // Scaled wear, same sigma/mean ratio as Table 1.
        p.wear.peMean = 800.0;
        p.wear.peSigma = 118.6;
    }
    p.reservedFraction = 0.07;
    p.stopBadFraction = 0.5;
    p.seed = seed;
    return p;
}

void
printCurve(const char *label, const EnduranceResult &r, unsigned steps)
{
    std::printf("\n[%s] bad superblocks vs data written (TB)\n", label);
    std::size_t n = r.curve.size();
    std::size_t stride = std::max<std::size_t>(1, n / steps);
    for (std::size_t i = 0; i < n; i += stride) {
        std::printf("  %10.3f TB  ->  %6u bad\n",
                    r.curve[i].dataWrittenBytes / 1e12,
                    r.curve[i].badSuperblocks);
    }
    std::printf("  first bad superblock at %.3f TB\n",
                r.dataUntilFirstBad() / 1e12);
}

/** Mean write latency (us) with @p scan_blocks WAS probe reads. */
double
scanOverheadLatency(unsigned scan_blocks)
{
    SsdConfig c = makeConfig(ArchKind::Baseline);
    c.geom.channels = 8;
    c.geom.ways = 4;
    c.geom.planesPerDie = 4;
    c.geom.blocksPerPlane = 16;
    c.geom.pagesPerBlock = 16;
    c.writeBuffer.mode = BufferMode::AlwaysMiss;
    Engine e;
    Ssd ssd(e, c);
    ssd.prefill(0.6, 0.1);
    SyntheticParams sp;
    sp.requestBytes = 4 * kKiB;
    sp.footprintBytes = 8 * kMiB;
    sp.count = 0;
    SyntheticGenerator gen(sp);
    QueueDriver drv(
        e, gen,
        [&ssd](const IoRequest &r, Engine::Callback cb) {
            ssd.submit(r, std::move(cb));
        },
        64);
    drv.start();
    // Spread scan reads over the window.
    const Tick window = 20 * tickMs;
    if (scan_blocks > 0) {
        Tick gap = window / scan_blocks;
        for (unsigned i = 0; i < scan_blocks; ++i) {
            e.scheduleAbs(1 + static_cast<Tick>(i) * gap, [&ssd, i] {
                Lpn probe = (static_cast<Lpn>(i) * 131) %
                            ssd.mapping().lpnCount();
                ssd.readPage(probe, [] {});
            });
        }
    }
    e.runUntil(window);
    drv.stop();
    e.run();
    return drv.writeLatency().mean() / tickUs;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOpts o = BenchOpts::parse(argc, argv);
    unsigned threads = o.resolvedThreads();
    JsonSeriesWriter json;

    banner("Fig 14(a)", "lifetime: bad superblocks vs data written");
    const SuperblockScheme schemes_a[] = {SuperblockScheme::Baseline,
                                          SuperblockScheme::Recycled,
                                          SuperblockScheme::Reserv};
    std::vector<EnduranceResult> ra(3);
    parallelFor(3, threads, [&](std::size_t i) {
        EnduranceParams p = eparams(o.full, o.seed);
        p.scheme = schemes_a[i];
        ra[i] = EnduranceSim(p).run();
    });
    const EnduranceResult &rb = ra[0], &rr = ra[1], &rs = ra[2];
    printCurve("BASELINE", rb, 12);
    printCurve("RECYCLED", rr, 12);
    printCurve("RESERV (7%)", rs, 12);
    EnduranceParams pa = eparams(o.full, o.seed);
    double frac = 0.10;
    std::printf("\nendurance at %.0f%% bad superblocks (data written, "
                "normalized to BASELINE):\n",
                100 * frac);
    double base = rb.dataUntilBadFraction(frac, pa.superblocks);
    std::printf("  BASELINE  1.000\n");
    std::printf("  RECYCLED  %.3f\n",
                rr.dataUntilBadFraction(frac, pa.superblocks) / base);
    std::printf("  RESERV    %.3f\n",
                rs.dataUntilBadFraction(frac, pa.superblocks) / base);
    std::printf("  RESERV first-bad delay: %.1f%%\n",
                100.0 * (rs.dataUntilFirstBad() / rb.dataUntilFirstBad() -
                         1.0));
    json.add("a/recycled_norm",
             rr.dataUntilBadFraction(frac, pa.superblocks) / base);
    json.add("a/reserv_norm",
             rs.dataUntilBadFraction(frac, pa.superblocks) / base);

    rule();
    banner("Fig 14(b)", "endurance improvement vs block-wear variation");
    std::printf("%-12s  %10s  %10s  %10s   (norm to BASELINE)\n",
                "sigma/mean", "RECYCLED", "RESERV", "WAS");
    const double rels[] = {0.05, 0.10, 0.148, 0.20, 0.30};
    const SuperblockScheme schemes_b[] = {SuperblockScheme::Baseline,
                                          SuperblockScheme::Recycled,
                                          SuperblockScheme::Reserv,
                                          SuperblockScheme::Was};
    // Flat grid: rels x (baseline + 3 schemes).
    std::vector<double> data_b(5 * 4);
    parallelFor(data_b.size(), threads, [&](std::size_t i) {
        EnduranceParams pv = eparams(o.full, o.seed);
        pv.wear.peSigma = rels[i / 4] * pv.wear.peMean;
        pv.scheme = schemes_b[i % 4];
        data_b[i] = EnduranceSim(pv).run().dataUntilBadFraction(
            frac, pv.superblocks);
    });
    for (std::size_t r = 0; r < 5; ++r) {
        double b = data_b[r * 4];
        double recycled = data_b[r * 4 + 1] / b;
        double reserv = data_b[r * 4 + 2] / b;
        double was = data_b[r * 4 + 3] / b;
        std::printf("%-12.3f  %10.3f  %10.3f  %10.3f\n", rels[r],
                    recycled, reserv, was);
        json.add("b/recycled", recycled);
        json.add("b/reserv", reserv);
        json.add("b/was", was);
    }

    rule();
    banner("Fig 14(c)", "WAS RBER-scan overhead on average I/O latency");
    // WAS reads >= one page per block over the front-end to refresh
    // endurance estimates; model the scan as extra host-path reads
    // concurrent with a synthetic write workload.
    std::printf("%-14s  %14s  %12s\n", "blocks scanned",
                "avg lat (us)", "norm");
    const unsigned scans[] = {0u,     2048u,  8192u,
                              32768u, 65536u, 131072u};
    std::vector<double> lat_c(6);
    parallelFor(lat_c.size(), threads, [&](std::size_t i) {
        lat_c[i] = scanOverheadLatency(scans[i]);
    });
    double norm = lat_c[0];
    for (std::size_t i = 0; i < lat_c.size(); ++i) {
        std::printf("%-14u  %14.1f  %12.2f\n", scans[i], lat_c[i],
                    lat_c[i] / norm);
        json.add("c/avg_lat_us", lat_c[i]);
    }
    json.writeIfRequested(o, "fig14_lifetime");
    return 0;
}
