/**
 * @file
 * Fig 8: I/O and GC performance improvement (normalized to Baseline)
 * as total on-chip bandwidth scales x1.25..x4, for the low- and
 * high-bandwidth flash scenarios, comparing Baseline-with-more-bus
 * (BW) against dSSD_f with the same total bandwidth.
 */

#include <cstdio>

#include "bench/harness.hh"

using namespace dssd;
using namespace dssd::bench;

namespace
{

void
sweep(const char *label, std::uint64_t req_bytes, bool full,
      std::uint64_t seed)
{
    ExpParams base;
    base.channels = 8;
    base.ways = full ? 8 : 4;
    base.planes = 8;
    base.blocksPerPlane = full ? 32 : 16;
    base.pagesPerBlock = full ? 32 : 16;
    base.requestBytes = req_bytes;
    base.bufferMode = BufferMode::Real;
    base.window = 25 * tickMs;
    base.seed = seed;

    ExpParams p0 = base;
    p0.arch = ArchKind::Baseline;
    ExpResult r0 = runExperiment(p0);

    std::printf("\n[%s flash: %llu KB writes]\n", label,
                static_cast<unsigned long long>(req_bytes / kKiB));
    std::printf("%-8s  %-8s  %10s  %10s\n", "factor", "config",
                "IO(norm)", "GC(norm)");
    for (double f : {1.25, 1.5, 2.0, 3.0, 4.0}) {
        for (ArchKind k : {ArchKind::BW, ArchKind::DSSDNoc}) {
            ExpParams p = base;
            p.arch = k;
            p.onChipFactor = f;
            ExpResult r = runExperiment(p);
            std::printf("x%-7.2f  %-8s  %10.3f  %10.3f\n", f,
                        archName(k), r.ioBytesPerSec / r0.ioBytesPerSec,
                        r.gcPagesPerSec / r0.gcPagesPerSec);
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOpts o = BenchOpts::parse(argc, argv);
    banner("Fig 8", "performance vs amount of on-chip bandwidth");
    sweep("low", 4 * kKiB, o.full, o.seed);
    rule();
    sweep("high", 128 * kKiB, o.full, o.seed);
    return 0;
}
