/**
 * @file
 * Fig 8: I/O and GC performance improvement (normalized to Baseline)
 * as total on-chip bandwidth scales x1.25..x4, for the low- and
 * high-bandwidth flash scenarios, comparing Baseline-with-more-bus
 * (BW) against dSSD_f with the same total bandwidth.
 *
 * Sweep points are independent simulations, so they fan out across the
 * harness worker pool (--threads N); rows print in sweep order either
 * way.
 */

#include <cstdio>
#include <vector>

#include "bench/harness.hh"
#include "sim/log.hh"

using namespace dssd;
using namespace dssd::bench;

namespace
{

constexpr double kFactors[] = {1.25, 1.5, 2.0, 3.0, 4.0};
constexpr ArchKind kArchs[] = {ArchKind::BW, ArchKind::DSSDNoc};

void
sweep(const char *label, std::uint64_t req_bytes, const BenchOpts &o,
      JsonSeriesWriter &json)
{
    ExpParams base;
    base.channels = 8;
    base.ways = o.full ? 8 : 4;
    base.planes = 8;
    base.blocksPerPlane = o.full ? 32 : 16;
    base.pagesPerBlock = o.full ? 32 : 16;
    base.requestBytes = req_bytes;
    base.bufferMode = BufferMode::Real;
    base.window = 25 * tickMs;
    base.seed = o.seed;

    // Point 0 is the Baseline normalizer; the rest is the sweep grid.
    std::vector<ExpParams> ps;
    ExpParams p0 = base;
    p0.arch = ArchKind::Baseline;
    ps.push_back(p0);
    for (double f : kFactors) {
        for (ArchKind k : kArchs) {
            ExpParams p = base;
            p.arch = k;
            p.onChipFactor = f;
            ps.push_back(p);
        }
    }
    std::vector<ExpResult> rs = runExperiments(ps, o.resolvedThreads());
    const ExpResult &r0 = rs[0];

    std::printf("\n[%s flash: %llu KB writes]\n", label,
                static_cast<unsigned long long>(req_bytes / kKiB));
    std::printf("%-8s  %-8s  %10s  %10s\n", "factor", "config",
                "IO(norm)", "GC(norm)");
    std::size_t idx = 1;
    for (double f : kFactors) {
        for (ArchKind k : kArchs) {
            const ExpResult &r = rs[idx++];
            double io = r.ioBytesPerSec / r0.ioBytesPerSec;
            double gc = r.gcPagesPerSec / r0.gcPagesPerSec;
            std::printf("x%-7.2f  %-8s  %10.3f  %10.3f\n", f,
                        archName(k), io, gc);
            json.add(strformat("%s/%s/io_norm", label, archName(k)), io);
            json.add(strformat("%s/%s/gc_norm", label, archName(k)), gc);
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOpts o = BenchOpts::parse(argc, argv);
    JsonSeriesWriter json;
    banner("Fig 8", "performance vs amount of on-chip bandwidth");
    sweep("low", 4 * kKiB, o, json);
    rule();
    sweep("high", 128 * kKiB, o, json);
    json.writeIfRequested(o, "fig08_bwsweep");
    return 0;
}
