/**
 * @file
 * Fig 7: (a) I/O and GC performance of Baseline / BW / dSSD / dSSD_b /
 * dSSD_f, normalized to Baseline, at equal total on-chip bandwidth;
 * (b) I/O system-bus utilization during GC for DRAM-hit and flash-write
 * I/O.
 */

#include <cstdio>

#include "bench/harness.hh"

using namespace dssd;
using namespace dssd::bench;

namespace
{

constexpr ArchKind kArchs[] = {ArchKind::Baseline, ArchKind::BW,
                               ArchKind::DSSD, ArchKind::DSSDBus,
                               ArchKind::DSSDNoc};

ExpParams
baseParams(const BenchOpts &o)
{
    bool full = o.full;
    ExpParams p;
    p.channels = 8;
    p.ways = full ? 8 : 4;
    p.planes = 8;
    p.blocksPerPlane = full ? 32 : 16;
    p.pagesPerBlock = full ? 32 : 16;
    // Optional array front-end: --shards=N runs every point on an
    // N-shard SsdArray (per-shard queue load kept constant), and
    // --engine-threads picks the engine-group execution mode.
    if (o.shards > 0) {
        p.shards = o.shards;
        p.queueDepth = 64 * o.shards;
    }
    p.engineThreads = o.engineThreads;
    p.requestBytes = 128 * kKiB; // high-bandwidth flash access (Sec 6.1)
    p.sequential = true;
    // Buffered writes (the paper's SSD stages all writes through the
    // DRAM write buffer): host data crosses the system bus into DRAM
    // and back out to flash, so the front end carries 2x the I/O
    // bytes — which is exactly the contention dSSD relieves.
    p.bufferMode = BufferMode::Real;
    p.window = 30 * tickMs;
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOpts o = BenchOpts::parse(argc, argv);
    banner("Fig 7(a)",
           "normalized I/O and GC performance, equal on-chip bandwidth");

    double base_io = 0, base_gc = 0;
    std::printf("%-10s  %12s  %12s  %10s  %10s\n", "config",
                "IO(GB/s)", "GC(pg/s)", "IO(norm)", "GC(norm)");
    for (ArchKind k : kArchs) {
        ExpParams p = baseParams(o);
        p.arch = k;
        p.seed = o.seed;
        if (k == ArchKind::DSSDNoc) {
            // Trace/stats attach to the fNoC run: it exercises every
            // track family (die ops, buses, NoC hops, global-copyback
            // stages).
            p.tracePath = o.trace;
            p.statsPath = o.stats;
        }
        ExpResult r = runExperiment(p);
        if (k == ArchKind::Baseline) {
            base_io = r.ioBytesPerSec;
            base_gc = r.gcPagesPerSec;
        }
        std::printf("%-10s  %12.3f  %12.0f  %10.3f  %10.3f\n",
                    archName(k), r.ioBytesPerSec / 1e9, r.gcPagesPerSec,
                    r.ioBytesPerSec / base_io, r.gcPagesPerSec / base_gc);
    }

    rule();
    banner("Fig 7(b)",
           "I/O system-bus utilization during GC: DRAM-hit vs flash-write");
    std::printf("%-10s  %16s  %16s\n", "config", "DRAM-hit util(%)",
                "flash-wr util(%)");
    for (ArchKind k : kArchs) {
        ExpParams p = baseParams(o);
        p.arch = k;
        p.seed = o.seed;
        p.bufferMode = BufferMode::AlwaysHit;
        ExpResult hit = runExperiment(p);
        p.bufferMode = BufferMode::AlwaysMiss;
        ExpResult miss = runExperiment(p);
        std::printf("%-10s  %16.1f  %16.1f\n", archName(k),
                    100 * hit.busIoUtil, 100 * miss.busIoUtil);
    }
    return 0;
}
