/**
 * @file
 * Fig 20: multi-tenant SLO compliance and tail latency under
 * open-loop fleet load, Baseline vs dSSD_f.
 *
 * Two experiments drive the multi-queue NVMe host front-end
 * (hil/nvme_host.hh) instead of the single closed-loop QueueDriver:
 *
 *  (a) Load sweep: four identical tenants submit Poisson open-loop
 *      traffic at a swept aggregate rate. Offered load beyond device
 *      capacity builds real submission-queue backlog, so per-tenant
 *      p99.9 and SLO compliance collapse past the knee — the overload
 *      behavior a closed-loop driver cannot express.
 *
 *  (b) Noisy neighbor: one bursty heavy-tailed tenant (bounded-Pareto
 *      inter-arrivals, 8x on/off bursts) shares the device with three
 *      steady Poisson tenants. Round-robin arbitration lets the
 *      neighbor's bursts queue ahead of everyone; weighted-round-robin
 *      (steady tenants weighted 4:1) and strict priority (steady
 *      tenants one level up) keep the steady tenants' compliance high
 *      at the same offered load.
 *
 * The device-slot budget is kept below the summed queue depths so
 * arbitration — not the queues — decides admission order.
 *
 * Determinism: stdout, --json and --stats are byte-identical run to
 * run and for any --engine-threads value. The host front-end requires
 * the engine-group completion order, so --engine-threads=0 (the
 * legacy shared-engine path) is normalized to 1 here: every point
 * runs the SsdArray front-end, where 1 worker is the serial reference
 * and any N >= 1 is bit-identical to it (CI diffs 0 vs 1 vs 8).
 *
 * Overrides: --arbiter pins one policy, --slo retargets every
 * tenant's latency SLO, --arrival replaces the sweep's per-tenant
 * arrival spec, and --tenants replaces experiment (a)'s tenant set.
 */

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/harness.hh"
#include "sim/log.hh"

using namespace dssd;
using namespace dssd::bench;

namespace
{

constexpr ArchKind kArchs[] = {ArchKind::Baseline, ArchKind::DSSDNoc};
constexpr ArbiterPolicy kPolicies[] = {
    ArbiterPolicy::RoundRobin,
    ArbiterPolicy::WeightedRoundRobin,
    ArbiterPolicy::StrictPriority,
};
/// Aggregate offered load points, thousands of IOPS (split evenly
/// over the four tenants). The middle point sits near the reduced
/// geometry's service capacity; the last is firmly in overload.
constexpr double kLoadsKiops[] = {100.0, 250.0, 500.0};
/// Default per-tenant latency SLO (us); --slo overrides.
constexpr double kSloUs = 2000.0;
constexpr unsigned kTenants = 4;
constexpr unsigned kTenantQd = 32;
/// Shared device-slot budget; below kTenants * kTenantQd so the
/// arbiter is what orders admission.
constexpr unsigned kDeviceDepth = 16;

ExpParams
baseParams(const BenchOpts &o)
{
    ExpParams p;
    p.channels = 4;
    p.ways = o.full ? 4 : 2;
    p.planes = 4;
    p.blocksPerPlane = 16;
    p.pagesPerBlock = 16;
    p.bufferMode = BufferMode::Real;
    p.shards = 1;
    // Host front-end points always run the SsdArray/engine-group
    // path: 0 (legacy shared engine) normalizes to the 1-worker
    // serial reference so output is byte-identical for any value.
    p.engineThreads = std::max(1u, o.engineThreads);
    p.hostDeviceDepth = kDeviceDepth;
    p.window = 10 * tickMs;
    p.seed = o.seed;
    return p;
}

HostTenant
makeTenant(double slo_us, const ArrivalParams &arrival)
{
    HostTenant ht;
    ht.tenant.queueDepth = kTenantQd;
    ht.tenant.sloTargetUs = slo_us;
    ht.readRatio = 0.5;
    ht.sequential = false;
    ht.requestBytes = 4 * kKiB;
    ht.arrival = arrival;
    return ht;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOpts o = BenchOpts::parse(argc, argv);
    JsonSeriesWriter json;
    banner("Fig 20",
           "multi-tenant SLO compliance vs open-loop load");

    double slo_us = o.sloUs > 0.0 ? o.sloUs : kSloUs;
    std::vector<ArbiterPolicy> policies;
    if (!o.arbiter.empty())
        policies.push_back(*parseArbiterPolicy(o.arbiter));
    else
        policies.assign(std::begin(kPolicies), std::end(kPolicies));

    //
    // (a) Load sweep: four identical Poisson tenants.
    //
    std::vector<ExpParams> ps;
    for (ArchKind k : kArchs) {
        for (ArbiterPolicy pol : policies) {
            for (double kiops : kLoadsKiops) {
                ExpParams p = baseParams(o);
                p.arch = k;
                p.arbiter = pol;
                std::vector<TenantParams> spec_tenants;
                if (!o.tenants.empty())
                    spec_tenants = *parseTenantSpec(o.tenants);
                unsigned n = spec_tenants.empty()
                                 ? kTenants
                                 : static_cast<unsigned>(
                                       spec_tenants.size());
                for (unsigned t = 0; t < n; ++t) {
                    ArrivalParams ap;
                    if (!o.arrival.empty()) {
                        ap = *parseArrivalSpec(o.arrival);
                    } else {
                        ap.kind = ArrivalKind::Poisson;
                        ap.iops = kiops * 1e3 / n;
                    }
                    HostTenant ht = makeTenant(slo_us, ap);
                    if (!spec_tenants.empty()) {
                        ht.tenant = spec_tenants[t];
                        if (ht.tenant.sloTargetUs == 0.0)
                            ht.tenant.sloTargetUs = slo_us;
                    }
                    p.hostTenants.push_back(ht);
                }
                ps.push_back(p);
            }
        }
    }

    //
    // (b) Noisy neighbor: tenant 0 bursty Pareto, tenants 1-3 steady
    // Poisson with 4x WRR weight and one priority level up.
    //
    std::size_t noisy_begin = ps.size();
    for (ArchKind k : kArchs) {
        for (ArbiterPolicy pol : policies) {
            ExpParams p = baseParams(o);
            p.arch = k;
            p.arbiter = pol;

            // The neighbor is noisy in bytes, not just arrivals:
            // 32 KiB requests mean round-robin's per-request fairness
            // hands it most of the device bandwidth, which is exactly
            // what byte-deficit WRR and strict priority correct.
            ArrivalParams noisy_ap;
            noisy_ap.kind = ArrivalKind::Pareto;
            noisy_ap.iops = 40e3;
            noisy_ap.paretoAlpha = 1.3;
            noisy_ap.burstFactor = 8.0;
            noisy_ap.burstOn = 1 * tickMs;
            noisy_ap.burstOff = 4 * tickMs;
            HostTenant noisy = makeTenant(slo_us, noisy_ap);
            noisy.tenant.name = "noisy";
            noisy.tenant.queueDepth = 64;
            noisy.requestBytes = 32 * kKiB;
            p.hostTenants.push_back(noisy);

            for (unsigned t = 1; t < kTenants; ++t) {
                ArrivalParams ap;
                ap.kind = ArrivalKind::Poisson;
                ap.iops = 80e3;
                HostTenant steady = makeTenant(slo_us, ap);
                steady.tenant.name = strformat("steady%u", t);
                steady.tenant.weight = 4;
                steady.tenant.priority = 1;
                p.hostTenants.push_back(steady);
            }
            ps.push_back(p);
        }
    }
    // Observability hooks go to one representative point: the dSSD_f
    // weighted-round-robin noisy-neighbor run (the configuration the
    // CI bit-identity diffs are about).
    for (std::size_t i = noisy_begin; i < ps.size(); ++i) {
        if (ps[i].arch == ArchKind::DSSDNoc &&
            ps[i].arbiter == ArbiterPolicy::WeightedRoundRobin) {
            ps[i].tracePath = o.trace;
            ps[i].statsPath = o.stats;
        }
    }

    std::vector<ExpResult> rs;
    std::vector<double> wall_ms(ps.size(), 0.0);
    if (o.timing) {
        rs.resize(ps.size());
        for (std::size_t i = 0; i < ps.size(); ++i) {
            auto t0 = std::chrono::steady_clock::now();
            rs[i] = runExperiment(ps[i]);
            auto t1 = std::chrono::steady_clock::now();
            wall_ms[i] =
                std::chrono::duration<double, std::milli>(t1 - t0)
                    .count();
            std::fprintf(stderr,
                         "[timing] %s %s %zu tenants "
                         "engine-threads=%u: %.1f ms\n",
                         archName(ps[i].arch),
                         arbiterPolicyName(ps[i].arbiter),
                         ps[i].hostTenants.size(),
                         ps[i].engineThreads, wall_ms[i]);
        }
    } else {
        rs = runExperiments(ps, o.resolvedThreads());
    }

    std::size_t idx = 0;
    for (ArchKind k : kArchs) {
        for (ArbiterPolicy pol : policies) {
            std::printf("\n%s, arbiter %s, SLO %.0f us\n", archName(k),
                        arbiterPolicyName(pol), slo_us);
            std::printf("%-12s %10s %10s %12s %10s\n", "load(kIOPS)",
                        "p99_us", "p999_us", "min_compl", "dropped");
            for (double kiops : kLoadsKiops) {
                const ExpResult &r = rs[idx++];
                double min_compl = 1.0;
                std::uint64_t dropped = 0;
                for (const TenantResult &t : r.tenants) {
                    min_compl = std::min(min_compl, t.sloCompliance);
                    dropped += t.dropped;
                }
                std::printf("%-12.0f %10.1f %10.1f %12.4f %10llu\n",
                            kiops, r.p99LatencyUs, r.p999LatencyUs,
                            min_compl,
                            static_cast<unsigned long long>(dropped));
                const char *arb = arbiterPolicyName(pol);
                json.add(strformat("%s/%s/offered_kiops", archName(k),
                                   arb),
                         kiops);
                json.add(strformat("%s/%s/p999_us", archName(k), arb),
                         r.p999LatencyUs);
                json.add(strformat("%s/%s/min_compliance", archName(k),
                                   arb),
                         min_compl);
                if (o.timing) {
                    json.add(strformat("%s/%s/wall_ms", archName(k),
                                       arb),
                             wall_ms[idx - 1]);
                }
            }
            rule();
        }
    }

    std::printf("\nnoisy neighbor: bursty tenant 0 vs steady 1-3 "
                "(steady weight 4, priority 1)\n");
    std::printf("%-10s %-8s %12s %14s %14s %12s\n", "arch", "arbiter",
                "noisy_compl", "steady_compl", "steady_p999", "dropped");
    for (std::size_t i = noisy_begin; i < ps.size(); ++i) {
        const ExpParams &p = ps[i];
        const ExpResult &r = rs[i];
        double steady_compl = 1.0;
        double steady_p999 = 0.0;
        std::uint64_t dropped = 0;
        for (std::size_t t = 1; t < r.tenants.size(); ++t) {
            steady_compl =
                std::min(steady_compl, r.tenants[t].sloCompliance);
            steady_p999 =
                std::max(steady_p999, r.tenants[t].p999LatencyUs);
        }
        for (const TenantResult &t : r.tenants)
            dropped += t.dropped;
        std::printf("%-10s %-8s %12.4f %14.4f %14.1f %12llu\n",
                    archName(p.arch), arbiterPolicyName(p.arbiter),
                    r.tenants[0].sloCompliance, steady_compl,
                    steady_p999,
                    static_cast<unsigned long long>(dropped));
        const char *arb = arbiterPolicyName(p.arbiter);
        json.add(strformat("%s/%s/noisy/steady_compliance",
                           archName(p.arch), arb),
                 steady_compl);
        json.add(strformat("%s/%s/noisy/noisy_compliance",
                           archName(p.arch), arb),
                 r.tenants[0].sloCompliance);
        json.add(strformat("%s/%s/noisy/steady_p999_us",
                           archName(p.arch), arb),
                 steady_p999);
    }
    rule();

    json.writeIfRequested(o, "fig20_tenants");
    return 0;
}
