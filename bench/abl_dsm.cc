/**
 * @file
 * Ablation: dynamic superblock management in the *timed* simulator.
 *
 * Complements the fast-path lifetime study (bench_fig14_lifetime) by
 * running STATIC / RECYCLED / RESERV through the full datapath on a
 * dSSD_f, so the cost side of the trade is visible: how much time the
 * hardware repair (same-channel global copyback of one sub-block)
 * costs versus the conventional whole-superblock relocation, and how
 * wall-clock-per-byte evolves as the device wears out.
 */

#include <cstdio>

#include "bench/harness.hh"
#include "core/dsm.hh"

using namespace dssd;
using namespace dssd::bench;

namespace
{

void
runScheme(DsmScheme scheme, bool full, std::uint64_t seed)
{
    SsdConfig c = makeConfig(ArchKind::DSSDNoc);
    c.geom = paperTlcGeometry();
    c.geom.blocksPerPlane = full ? 64 : 24;
    c.geom.pagesPerBlock = full ? 32 : 8;
    c.timing = tlcTiming();
    Engine engine;
    Ssd ssd(engine, c);
    SuperblockMapping map(c.geom, 0.0);

    DsmParams p;
    p.scheme = scheme;
    p.wear.peMean = full ? 200 : 60;
    p.wear.peSigma = 0.148 * p.wear.peMean;
    p.reservedFraction = 0.07;
    p.seed = seed;

    DynamicSuperblockEngine eng(ssd, map, p);
    eng.run(full ? 20000 : 4000, [] {});
    engine.run();

    const DsmStats &s = eng.stats();
    double tb = static_cast<double>(s.bytesWritten) / 1e12;
    double sec = ticksToSec(engine.now());
    std::printf("%-9s  %8llu  %10.4f  %8.3f  %6u  %8llu  %10llu  %10llu\n",
                dsmSchemeName(scheme),
                static_cast<unsigned long long>(s.cycles), tb, sec,
                s.deadSuperblocks,
                static_cast<unsigned long long>(s.remapEvents),
                static_cast<unsigned long long>(s.repairPagesCopied),
                static_cast<unsigned long long>(s.deathPagesCopied));
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOpts o = BenchOpts::parse(argc, argv);
    banner("Ablation",
           "dynamic superblock management through the timed datapath "
           "(dSSD_f, TLC)");
    std::printf("%-9s  %8s  %10s  %8s  %6s  %8s  %10s  %10s\n", "scheme",
                "cycles", "written(TB)", "simtime", "dead", "remaps",
                "repairpgs", "deathpgs");
    for (DsmScheme s :
         {DsmScheme::Static, DsmScheme::Recycled, DsmScheme::Reserv})
        runScheme(s, o.full, o.seed);
    std::printf("\nReading the table: RECYCLED/RESERV convert expensive "
                "whole-superblock deaths (deathpgs, via the front-end-free "
                "GC path) into cheap single-sub-block repairs (repairpgs, "
                "same-channel copyback), sustaining more written bytes "
                "before the pool collapses.\n");
    return 0;
}
