#include "bench/harness.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>

#include "sim/log.hh"

namespace dssd
{
namespace bench
{

BenchOpts
BenchOpts::parse(int argc, char **argv)
{
    BenchOpts o;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--full") == 0)
            o.full = true;
        else if (std::strncmp(argv[i], "--seed=", 7) == 0)
            o.seed = std::strtoull(argv[i] + 7, nullptr, 10);
        else
            fatal("unknown option '%s' (supported: --full --seed=N)",
                  argv[i]);
    }
    return o;
}

void
banner(const std::string &id, const std::string &what)
{
    std::printf("==============================================================\n");
    std::printf("%s — %s\n", id.c_str(), what.c_str());
    std::printf("==============================================================\n");
}

void
rule()
{
    std::printf("--------------------------------------------------------------\n");
}

SsdConfig
makeExpConfig(const ExpParams &p)
{
    SsdConfig c = makeConfig(p.arch);
    c.geom.channels = p.channels;
    c.geom.ways = p.ways;
    c.geom.diesPerWay = 1;
    c.geom.planesPerDie = p.planes;
    c.geom.blocksPerPlane = p.blocksPerPlane;
    c.geom.pagesPerBlock = p.pagesPerBlock;
    if (p.tlc) {
        c.timing = tlcTiming();
        c.geom.pageBytes = 16 * kKiB;
    }
    c.systemBusBandwidth = gbPerSec(p.systemBusGb);
    c.onChipBandwidthFactor =
        p.arch == ArchKind::Baseline ? 1.0 : p.onChipFactor;
    c.writeBuffer.mode = p.bufferMode;
    c.writeBuffer.capacityPages = 4096;
    c.flushInFlight = 64;
    c.gc.policy = p.gcPolicy;
    c.gc.copiesInFlightPerUnit = p.gcCopiesInFlight;
    c.nocTopology = p.nocTopology;
    if (p.nocLinkGb > 0.0) {
        c.nocExplicitBandwidth = true;
        c.noc.linkBandwidth = gbPerSec(p.nocLinkGb);
    }
    c.noc.bufferPackets = p.nocBuffers;
    c.decoupled.srtEntries = p.srtCapacity;
    c.seed = p.seed;
    return c;
}

namespace
{

/** Install @p count random in-channel remaps into every SRT. */
void
populateSrt(Ssd &ssd, unsigned count, Rng &rng)
{
    const FlashGeometry &g = ssd.config().geom;
    std::uint32_t blocks_per_channel =
        g.ways * g.diesPerWay * g.planesPerDie * g.blocksPerPlane;
    for (unsigned ch = 0; ch < g.channels; ++ch) {
        DecoupledController *dc = ssd.decoupledController(ch);
        if (!dc)
            return;
        for (unsigned i = 0; i < count; ++i) {
            ChannelBlockId from = static_cast<ChannelBlockId>(
                rng.uniformInt(0, blocks_per_channel - 1));
            ChannelBlockId to = static_cast<ChannelBlockId>(
                rng.uniformInt(0, blocks_per_channel - 1));
            dc->srt().insert(from, to);
        }
    }
}

} // namespace

ExpResult
runExperiment(const ExpParams &p)
{
    SsdConfig cfg = makeExpConfig(p);
    Engine engine;
    Ssd ssd(engine, cfg);
    ssd.prefill(p.prefillFill, p.prefillInvalid);

    Rng rng(p.seed + 7);
    if (p.srtRemapsPerChannel > 0)
        populateSrt(ssd, p.srtRemapsPerChannel, rng);

    std::unique_ptr<Generator> gen;
    if (p.traceName) {
        std::uint64_t footprint = std::min<std::uint64_t>(
            ssd.mapping().lpnCount() * cfg.geom.pageBytes / 2,
            512 * kMiB);
        footprint = std::max<std::uint64_t>(footprint, 2 * kMiB);
        gen = std::make_unique<TraceSynthesizer>(
            traceProfile(p.traceName), footprint, 0, p.seed,
            p.traceIops);
    } else {
        SyntheticParams sp;
        sp.readRatio = p.readRatio;
        sp.sequential = p.sequential;
        sp.requestBytes = p.requestBytes;
        sp.footprintBytes = std::max<std::uint64_t>(
            ssd.mapping().lpnCount() * cfg.geom.pageBytes / 2,
            4 * p.requestBytes);
        sp.count = 0; // unbounded; the window bounds the run
        sp.seed = p.seed;
        gen = std::make_unique<SyntheticGenerator>(sp);
    }

    std::unique_ptr<QueueDriver> drv;
    if (p.queueDepth > 0) {
        drv = std::make_unique<QueueDriver>(
            engine, *gen,
            [&ssd](const IoRequest &r, Engine::Callback cb) {
                ssd.submit(r, std::move(cb));
            },
            p.queueDepth);
        drv->start();
    }

    // GC load: forced rounds, re-armed until the window closes so GC
    // pressure persists for the whole measurement (the paper assumes
    // GC triggered throughout).
    struct GcLoop
    {
        Ssd &ssd;
        Engine &engine;
        const ExpParams &p;
        bool stopped = false;

        void
        arm()
        {
            ssd.gc().forceAll(p.gcVictims, [this] {
                if (!stopped && p.continuousGc &&
                    engine.now() < p.window) {
                    engine.schedule(1, [this] { arm(); });
                }
            });
        }
    };
    std::unique_ptr<GcLoop> gc_loop;
    if (p.runGc && p.gcForced) {
        gc_loop = std::make_unique<GcLoop>(GcLoop{ssd, engine, p});
        if (p.gcDelay > 0)
            engine.schedule(p.gcDelay, [&gl = *gc_loop] { gl.arm(); });
        else
            gc_loop->arm();
    }

    engine.runUntil(p.window);
    if (gc_loop)
        gc_loop->stopped = true;
    if (drv)
        drv->stop();
    engine.run();

    ExpResult r;
    if (drv) {
        r.ioBytesPerSec = drv->ioBytes().averageRate(0, p.window);
        r.avgLatencyUs = drv->allLatency().mean() / tickUs;
        r.p99LatencyUs = drv->allLatency().percentile(99) / tickUs;
        r.p999LatencyUs = drv->allLatency().percentile(99.9) / tickUs;
        r.readAvgLatencyUs = drv->readLatency().mean() / tickUs;
        r.readP99LatencyUs = drv->readLatency().percentile(99) / tickUs;
        r.ioCompleted = drv->completed();
        auto series = drv->ioBytes().ratePerSec();
        for (double v : series)
            r.ioBwSeries.push_back(v / 1e9);
    }
    r.gcPagesMoved = ssd.gc().pagesMoved();
    Tick gc_start =
        ssd.gc().firstGcStart() == maxTick ? 0 : ssd.gc().firstGcStart();
    Tick gc_end = std::max(ssd.gc().lastGcEnd(), gc_start + 1);
    r.gcStart = gc_start;
    r.gcEnd = gc_end;
    if (r.gcPagesMoved > 0) {
        r.gcPagesPerSec = static_cast<double>(r.gcPagesMoved) /
                          ticksToSec(gc_end - gc_start);
    }
    r.busIoUtil = ssd.busRecorder().busyFraction(tagIo, 0, p.window);
    r.busGcUtil = ssd.busRecorder().busyFraction(tagGc, 0, p.window);
    r.busIoSeries = ssd.busRecorder().series(tagIo);
    r.busGcSeries = ssd.busRecorder().series(tagGc);
    r.ioBreakdown = ssd.ioBreakdown().mean();
    r.cbBreakdown = ssd.copybackBreakdown().mean();
    return r;
}

} // namespace bench
} // namespace dssd
