#include "bench/harness.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <thread>

#include <memory>

#include "sim/log.hh"
#include "sim/registry.hh"
#include "sim/trace.hh"

namespace dssd
{
namespace bench
{

BenchOpts
BenchOpts::parse(int argc, char **argv)
{
    BenchOpts o;
    auto value = [&](const char *name, int &i) -> const char * {
        std::size_t n = std::strlen(name);
        if (std::strncmp(argv[i], name, n) != 0)
            return nullptr;
        if (argv[i][n] == '=')
            return argv[i] + n + 1;
        if (argv[i][n] == '\0' && i + 1 < argc)
            return argv[++i];
        return nullptr;
    };
    for (int i = 1; i < argc; ++i) {
        const char *v;
        if (std::strcmp(argv[i], "--full") == 0)
            o.full = true;
        else if ((v = value("--seed", i)))
            o.seed = std::strtoull(v, nullptr, 10);
        else if ((v = value("--threads", i)))
            o.threads = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        else if ((v = value("--json", i)))
            o.json = v;
        else if ((v = value("--trace", i)))
            o.trace = v;
        else if ((v = value("--stats", i)))
            o.stats = v;
        else if (std::strcmp(argv[i], "--faults") == 0)
            o.faults = true;
        else if ((v = value("--fault-seed", i))) {
            o.faults = true;
            o.faultSeed = std::strtoull(v, nullptr, 10);
        } else if ((v = value("--shards", i)))
            o.shards = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        else if ((v = value("--engine-threads", i))) {
            o.engineThreads =
                static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (std::strcmp(argv[i], "--timing") == 0)
            o.timing = true;
        else if ((v = value("--array-gc", i))) {
            auto policy = parseArrayGcPolicy(v);
            if (!policy) {
                fatal("unknown --array-gc policy '%s' (supported: "
                      "uncoordinated staggered token greedy)",
                      v);
            }
            o.arrayGc = *policy;
        } else if (std::strcmp(argv[i], "--parity") == 0)
            o.parity = true;
        else if ((v = value("--tenants", i))) {
            if (!parseTenantSpec(v))
                fatal("bad --tenants spec '%s' (a count or "
                      "';'-separated \"qd:N,w:N,prio:N,rate:B,"
                      "burst:B,slo:US,name:S\" groups)",
                      v);
            o.tenants = v;
        } else if ((v = value("--arbiter", i))) {
            if (!parseArbiterPolicy(v))
                fatal("unknown --arbiter policy '%s' (supported: rr "
                      "wrr prio)",
                      v);
            o.arbiter = v;
        } else if ((v = value("--arrival", i))) {
            if (!parseArrivalSpec(v))
                fatal("bad --arrival spec '%s' (closed | "
                      "poisson:IOPS | pareto:IOPS[:ALPHA], with "
                      "optional \",diurnal:AMP[:PERIOD_MS]\" and "
                      "\",burst:FACTOR[:ON_MS[:OFF_MS]]\")",
                      v);
            o.arrival = v;
        } else if ((v = value("--slo", i))) {
            o.sloUs = std::strtod(v, nullptr);
            if (o.sloUs <= 0.0)
                fatal("--slo needs a positive latency target in us");
        } else if ((v = value("--gc-policy", i))) {
            if (!isVictimPolicy(v))
                fatal("unknown --gc-policy '%s' (supported: greedy "
                      "costbenefit windowed)",
                      v);
            o.gcPolicy = v;
        } else if ((v = value("--alloc-policy", i))) {
            if (!isAllocPolicy(v))
                fatal("unknown --alloc-policy '%s' (supported: rr "
                      "conflict)",
                      v);
            o.allocPolicy = v;
        } else if (std::strcmp(argv[i], "--gc-preempt") == 0)
            o.gcPreempt = true;
        else
            fatal("unknown option '%s' (supported: --full --seed=N "
                  "--threads=N --json=FILE --trace=FILE --stats=FILE "
                  "--faults --fault-seed=N --shards=N "
                  "--engine-threads=N --array-gc=POLICY --parity "
                  "--tenants=SPEC --arbiter=POLICY --arrival=SPEC "
                  "--slo=US --gc-policy=NAME --alloc-policy=NAME "
                  "--gc-preempt --timing)",
                  argv[i]);
    }
    return o;
}

unsigned
BenchOpts::resolvedThreads() const
{
    if (threads > 0)
        return threads;
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

void
banner(const std::string &id, const std::string &what)
{
    std::printf("==============================================================\n");
    std::printf("%s — %s\n", id.c_str(), what.c_str());
    std::printf("==============================================================\n");
}

void
rule()
{
    std::printf("--------------------------------------------------------------\n");
}

SsdConfig
makeExpConfig(const ExpParams &p)
{
    SsdConfig c = makeConfig(p.arch);
    c.geom.channels = p.channels;
    c.geom.ways = p.ways;
    c.geom.diesPerWay = 1;
    c.geom.planesPerDie = p.planes;
    c.geom.blocksPerPlane = p.blocksPerPlane;
    c.geom.pagesPerBlock = p.pagesPerBlock;
    if (p.tlc) {
        c.timing = tlcTiming();
        c.geom.pageBytes = 16 * kKiB;
    }
    c.systemBusBandwidth = gbPerSec(p.systemBusGb);
    c.onChipBandwidthFactor =
        p.arch == ArchKind::Baseline ? 1.0 : p.onChipFactor;
    c.writeBuffer.mode = p.bufferMode;
    c.writeBuffer.capacityPages = 4096;
    c.flushInFlight = 64;
    c.gc.policy = p.gcPolicy;
    c.gc.copiesInFlightPerUnit = p.gcCopiesInFlight;
    c.gc.victimPolicy = p.victimPolicy;
    c.gc.allocPolicy = p.allocPolicy;
    c.gc.victimWindow = p.victimWindow;
    c.gc.preemptible = p.gcPreempt;
    c.nocTopology = p.nocTopology;
    if (p.nocLinkGb > 0.0) {
        c.nocExplicitBandwidth = true;
        c.noc.linkBandwidth = gbPerSec(p.nocLinkGb);
    }
    c.noc.bufferPackets = p.nocBuffers;
    c.decoupled.srtEntries = p.srtCapacity;
    c.fault = p.fault;
    c.seed = p.seed;
    return c;
}

namespace
{

/** Install @p count random in-channel remaps into every SRT. */
void
populateSrt(Ssd &ssd, unsigned count, Rng &rng)
{
    const FlashGeometry &g = ssd.config().geom;
    std::uint32_t blocks_per_channel =
        g.ways * g.diesPerWay * g.planesPerDie * g.blocksPerPlane;
    for (unsigned ch = 0; ch < g.channels; ++ch) {
        DecoupledController *dc = ssd.decoupledController(ch);
        if (!dc)
            return;
        for (unsigned i = 0; i < count; ++i) {
            ChannelBlockId from = static_cast<ChannelBlockId>(
                rng.uniformInt(0, blocks_per_channel - 1));
            ChannelBlockId to = static_cast<ChannelBlockId>(
                rng.uniformInt(0, blocks_per_channel - 1));
            dc->srt().insert(from, to);
        }
    }
}

} // namespace

ExpResult
runExperiment(const ExpParams &p)
{
    SsdConfig cfg = makeExpConfig(p);
    Engine engine;

    std::unique_ptr<Tracer> tracer;
    if (!p.tracePath.empty()) {
#if DSSD_TRACING
        tracer = std::make_unique<Tracer>(p.tracePath);
        engine.setTracer(tracer.get());
#else
        warn("--trace requested but tracing was compiled out "
             "(-DDSSD_TRACE=OFF); no trace will be written");
#endif
    }

    // One plain Ssd at shards == 1 (bit-identical to the pre-array
    // harness); an SsdArray front-end above N shards — or whenever the
    // engine group is requested — otherwise.
    std::unique_ptr<Ssd> single;
    std::unique_ptr<SsdArray> array;
    if (p.shards > 1 || p.engineThreads > 0) {
        SsdArrayParams ap;
        ap.shards = p.shards;
        ap.engineThreads = p.engineThreads;
        ap.gc.policy = p.arrayGc;
        ap.gc.maxConcurrent = p.arrayGcMaxConcurrent;
        ap.parity = p.parity;
        array = std::make_unique<SsdArray>(engine, cfg, ap);
        array->prefill(p.prefillFill, p.prefillInvalid);
    } else {
        single = std::make_unique<Ssd>(engine, cfg);
        single->prefill(p.prefillFill, p.prefillInvalid);
    }

    Rng rng(p.seed + 7);
    if (p.srtRemapsPerChannel > 0) {
        if (single) {
            populateSrt(*single, p.srtRemapsPerChannel, rng);
        } else {
            for (unsigned s = 0; s < array->shardCount(); ++s)
                populateSrt(array->shard(s), p.srtRemapsPerChannel, rng);
        }
    }
    Lpn lpn_count =
        single ? single->mapping().lpnCount() : array->lpnCount();

    std::unique_ptr<Generator> gen;
    if (p.traceName) {
        std::uint64_t footprint = std::min<std::uint64_t>(
            lpn_count * cfg.geom.pageBytes / 2, 512 * kMiB);
        footprint = std::max<std::uint64_t>(footprint, 2 * kMiB);
        gen = std::make_unique<TraceSynthesizer>(
            traceProfile(p.traceName), footprint, 0, p.seed,
            p.traceIops);
    } else {
        SyntheticParams sp;
        sp.readRatio = p.readRatio;
        sp.sequential = p.sequential;
        sp.requestBytes = p.requestBytes;
        sp.hotFraction = p.hotFraction;
        sp.hotAccessRatio = p.hotAccessRatio;
        double frac = p.footprintFraction > 0.0 ? p.footprintFraction
                                                : 0.5;
        sp.footprintBytes = std::max<std::uint64_t>(
            static_cast<std::uint64_t>(
                static_cast<double>(lpn_count * cfg.geom.pageBytes) *
                frac),
            4 * p.requestBytes);
        sp.count = 0; // unbounded; the window bounds the run
        sp.seed = p.seed;
        gen = std::make_unique<SyntheticGenerator>(sp);
    }

    auto submit_fn = [s = single.get(), a = array.get()](
                         const IoRequest &r, Engine::Callback cb) {
        if (s)
            s->submit(r, std::move(cb));
        else
            a->submit(r, std::move(cb));
    };

    std::unique_ptr<QueueDriver> drv;
    std::unique_ptr<NvmeHost> host;
    std::vector<std::unique_ptr<Generator>> tenant_gens;
    if (!p.hostTenants.empty()) {
        // Multi-tenant host front-end: one generator (and one
        // submission queue) per tenant, decisions by the arbiter.
        NvmeHostParams hp;
        hp.policy = p.arbiter;
        hp.deviceDepth = p.hostDeviceDepth;
        host = std::make_unique<NvmeHost>(engine, submit_fn, hp);
        for (std::size_t i = 0; i < p.hostTenants.size(); ++i) {
            const HostTenant &ht = p.hostTenants[i];
            SyntheticParams sp;
            sp.readRatio = ht.readRatio;
            sp.sequential = ht.sequential;
            sp.requestBytes = ht.requestBytes;
            sp.footprintBytes = std::max<std::uint64_t>(
                lpn_count * cfg.geom.pageBytes / 2,
                4 * ht.requestBytes);
            sp.count = 0;
            // Distinct request and arrival streams per tenant, both
            // derived from the experiment seed.
            sp.seed = p.seed + 1000 * (i + 1);
            std::unique_ptr<Generator> g =
                std::make_unique<SyntheticGenerator>(sp);
            bool open = ht.arrival.kind != ArrivalKind::Closed;
            if (open) {
                g = std::make_unique<OpenLoopGenerator>(
                    std::move(g), ht.arrival,
                    p.seed + 1000 * (i + 1) + 500);
            }
            host->addTenant(ht.tenant, *g, open);
            tenant_gens.push_back(std::move(g));
        }
        host->start();
    } else if (p.queueDepth > 0) {
        drv = std::make_unique<QueueDriver>(engine, *gen, submit_fn,
                                            p.queueDepth);
        drv->start();
    }

    // GC load: forced rounds, re-armed until the window closes so GC
    // pressure persists for the whole measurement (the paper assumes
    // GC triggered throughout).
    struct GcLoop
    {
        std::function<void(unsigned, Engine::Callback)> force;
        Engine &engine;
        const ExpParams &p;
        bool stopped = false;

        void
        arm()
        {
            force(p.gcVictims, [this] {
                if (!stopped && p.continuousGc &&
                    engine.now() < p.window) {
                    engine.schedule(1, [this] { arm(); });
                }
            });
        }
    };
    std::unique_ptr<GcLoop> gc_loop;
    if (p.runGc && p.gcForced) {
        std::function<void(unsigned, Engine::Callback)> force;
        if (single) {
            force = [s = single.get()](unsigned v, Engine::Callback cb) {
                s->gc().forceAll(v, std::move(cb));
            };
        } else {
            force = [a = array.get()](unsigned v, Engine::Callback cb) {
                a->forceAllGc(v, std::move(cb));
            };
        }
        gc_loop = std::make_unique<GcLoop>(
            GcLoop{std::move(force), engine, p});
        if (p.gcDelay > 0)
            engine.schedule(p.gcDelay, [&gl = *gc_loop] { gl.arm(); });
        else
            gc_loop->arm();
    }

    // Drive through the array when one exists so the engine group's
    // epoch protocol runs; plain engine driving otherwise. Identical
    // behavior in legacy mode (the array forwards to the engine).
    if (array)
        array->runUntil(p.window);
    else
        engine.runUntil(p.window);
    if (gc_loop)
        gc_loop->stopped = true;
    if (drv)
        drv->stop();
    if (host)
        host->stop();
    if (array)
        array->run();
    else
        engine.run();

#if DSSD_TRACING
    if (tracer) {
        // Bus-utilization counter tracks, one sample per recorder
        // window, so the Perfetto timeline shows the same series the
        // figures plot.
        UtilizationRecorder &rec =
            single ? single->busRecorder()
                   : array->shard(0).busRecorder();
        int pid = tracer->process("counters");
        auto io_series = rec.series(tagIo);
        auto gc_series = rec.series(tagGc);
        for (std::size_t w = 0; w < io_series.size(); ++w) {
            Tick at = static_cast<Tick>(w) * rec.window();
            tracer->counter(pid, "sysbus-io-util", at, io_series[w]);
            tracer->counter(pid, "sysbus-gc-util", at, gc_series[w]);
        }
        tracer->finish();
        engine.setTracer(nullptr);
    }
#endif

    if (!p.statsPath.empty()) {
        StatRegistry reg;
        if (single)
            single->registerStats(reg, "ssd0");
        else
            array->registerStats(reg, "ssd0");
        if (drv)
            drv->registerStats(reg, "host");
        if (host)
            host->registerStats(reg, "host");
        reg.writeJson(p.statsPath);
    }

    ExpResult r;
    if (drv) {
        r.ioBytesPerSec = drv->ioBytes().averageRate(0, p.window);
        r.avgLatencyUs = drv->allLatency().mean() / tickUs;
        r.p99LatencyUs = drv->allLatency().percentile(99) / tickUs;
        r.p999LatencyUs = drv->allLatency().percentile(99.9) / tickUs;
        r.readAvgLatencyUs = drv->readLatency().mean() / tickUs;
        r.readP99LatencyUs = drv->readLatency().percentile(99) / tickUs;
        r.readP999LatencyUs =
            drv->readLatency().percentile(99.9) / tickUs;
        r.ioCompleted = drv->completed();
        auto series = drv->ioBytes().ratePerSec();
        for (double v : series)
            r.ioBwSeries.push_back(v / 1e9);
    }
    if (host) {
        r.ioBytesPerSec = host->ioBytes().averageRate(0, p.window);
        r.avgLatencyUs = host->allLatency().mean() / tickUs;
        r.p99LatencyUs = host->allLatency().percentile(99) / tickUs;
        r.p999LatencyUs =
            host->allLatency().percentile(99.9) / tickUs;
        r.readAvgLatencyUs = host->readLatency().mean() / tickUs;
        r.readP99LatencyUs =
            host->readLatency().percentile(99) / tickUs;
        r.readP999LatencyUs =
            host->readLatency().percentile(99.9) / tickUs;
        r.ioCompleted = host->completed();
        auto series = host->ioBytes().ratePerSec();
        for (double v : series)
            r.ioBwSeries.push_back(v / 1e9);
        for (unsigned t = 0; t < host->tenantCount(); ++t) {
            const TenantStats &ts = host->tenantStats(t);
            TenantResult tr;
            tr.ioBytesPerSec = ts.ioBytes().averageRate(0, p.window);
            tr.avgLatencyUs = ts.latency().mean() / tickUs;
            tr.p99LatencyUs = ts.latency().percentile(99) / tickUs;
            tr.p999LatencyUs =
                ts.latency().percentile(99.9) / tickUs;
            tr.sloCompliance = ts.sloCompliance();
            tr.completed = ts.completed();
            tr.dropped = ts.dropped();
            tr.sloViolations = ts.sloViolations();
            r.tenants.push_back(tr);
        }
    }
    r.gcPagesMoved =
        single ? single->gc().pagesMoved() : array->gcPagesMoved();
    // FTL write accounting: prefill resets the host-write counter, so
    // this is the measured window's WAF.
    if (single) {
        r.hostPageWrites = single->mapping().hostWrites();
        r.gcRelocated = single->mapping().gcRelocations();
    } else {
        for (unsigned s = 0; s < array->shardCount(); ++s) {
            r.hostPageWrites += array->shard(s).mapping().hostWrites();
            r.gcRelocated += array->shard(s).mapping().gcRelocations();
        }
    }
    if (r.hostPageWrites > 0) {
        r.waf = static_cast<double>(r.hostPageWrites + r.gcRelocated) /
                static_cast<double>(r.hostPageWrites);
    }
    Tick gc_first =
        single ? single->gc().firstGcStart() : array->gcFirstStart();
    Tick gc_last = single ? single->gc().lastGcEnd() : array->gcLastEnd();
    Tick gc_start = gc_first == maxTick ? 0 : gc_first;
    Tick gc_end = std::max(gc_last, gc_start + 1);
    r.gcStart = gc_start;
    r.gcEnd = gc_end;
    if (r.gcPagesMoved > 0) {
        r.gcPagesPerSec = static_cast<double>(r.gcPagesMoved) /
                          ticksToSec(gc_end - gc_start);
    }
    // Bus-utilization series come from shard 0 in array mode (each
    // shard has its own system bus; shard 0 is representative).
    UtilizationRecorder &rec0 = single ? single->busRecorder()
                                       : array->shard(0).busRecorder();
    r.busIoUtil = rec0.busyFraction(tagIo, 0, p.window);
    r.busGcUtil = rec0.busyFraction(tagGc, 0, p.window);
    r.busIoSeries = rec0.series(tagIo);
    r.busGcSeries = rec0.series(tagGc);
    BreakdownStats io_bd =
        single ? single->ioBreakdown() : array->ioBreakdown();
    BreakdownStats cb_bd =
        single ? single->copybackBreakdown() : array->copybackBreakdown();
    r.ioBreakdown = io_bd.mean();
    r.cbBreakdown = cb_bd.mean();
    return r;
}

void
parallelFor(std::size_t n, unsigned threads,
            const std::function<void(std::size_t)> &fn)
{
    if (threads == 0) {
        unsigned hw = std::thread::hardware_concurrency();
        threads = hw > 0 ? hw : 1;
    }
    std::size_t workers = std::min<std::size_t>(threads, n);
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
        pool.emplace_back([&] {
            for (std::size_t i = next.fetch_add(1); i < n;
                 i = next.fetch_add(1))
                fn(i);
        });
    }
    for (std::thread &t : pool)
        t.join();
}

std::vector<ExpResult>
runExperiments(const std::vector<ExpParams> &ps, unsigned threads)
{
    std::vector<ExpResult> out(ps.size());
    parallelFor(ps.size(), threads,
                [&](std::size_t i) { out[i] = runExperiment(ps[i]); });
    return out;
}

//
// JsonSeriesWriter
//

void
JsonSeriesWriter::add(const std::string &name, double v)
{
    for (std::size_t i = 0; i < _order.size(); ++i) {
        if (_order[i] == name) {
            _series[i].push_back(v);
            return;
        }
    }
    _order.push_back(name);
    _series.push_back({v});
}

void
JsonSeriesWriter::write(const std::string &path,
                        const std::string &bench) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("cannot open --json file '%s'", path.c_str());
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"series\": {",
                 bench.c_str());
    for (std::size_t i = 0; i < _order.size(); ++i) {
        std::fprintf(f, "%s\n    \"%s\": [", i ? "," : "",
                     _order[i].c_str());
        for (std::size_t j = 0; j < _series[i].size(); ++j)
            std::fprintf(f, "%s%.17g", j ? ", " : "", _series[i][j]);
        std::fprintf(f, "]");
    }
    std::fprintf(f, "\n  }\n}\n");
    std::fclose(f);
}

void
JsonSeriesWriter::writeIfRequested(const BenchOpts &opts,
                                   const std::string &bench) const
{
    if (!opts.json.empty())
        write(opts.json, bench);
}

} // namespace bench
} // namespace dssd
