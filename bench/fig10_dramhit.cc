/**
 * @file
 * Fig 10: (a) I/O bandwidth and tail latency with 100% DRAM-cached
 * I/O while GC runs, for BW / dSSD / dSSD_f; (b) average I/O latency
 * across workload traces for Baseline / BW / TinyTail / dSSD_f.
 */

#include <cstdio>

#include "bench/harness.hh"

using namespace dssd;
using namespace dssd::bench;

int
main(int argc, char **argv)
{
    BenchOpts o = BenchOpts::parse(argc, argv);

    banner("Fig 10(a)",
           "100% DRAM-cached I/O under GC: bandwidth and tail latency");
    std::printf("%-10s  %12s  %12s  %12s\n", "config", "IO(GB/s)",
                "p99(us)", "p99.9(us)");
    for (ArchKind k :
         {ArchKind::BW, ArchKind::DSSD, ArchKind::DSSDNoc}) {
        ExpParams p;
        p.arch = k;
        p.channels = 8;
        p.ways = 4;
        p.planes = 8;
        p.requestBytes = 4 * kKiB;
        p.bufferMode = BufferMode::AlwaysHit;
        p.window = 30 * tickMs;
        p.seed = o.seed;
        ExpResult r = runExperiment(p);
        std::printf("%-10s  %12.3f  %12.1f  %12.1f\n", archName(k),
                    r.ioBytesPerSec / 1e9, r.p99LatencyUs,
                    r.p999LatencyUs);
    }

    rule();
    banner("Fig 10(b)", "average I/O latency across traces (normalized "
                        "to Baseline; lower is better)");
    const char *traces[] = {"prn_0", "src1_2", "usr_2", "hm_1",
                            "proj_0", "web_0"};
    std::printf("%-8s  %10s  %10s  %10s  %10s\n", "trace", "Baseline",
                "BW", "TinyTail", "dSSD_f");
    double sums[4] = {0, 0, 0, 0};
    for (const char *t : traces) {
        double lat[4];
        int i = 0;
        struct Cfg
        {
            ArchKind arch;
            GcPolicy pol;
        };
        for (Cfg c : {Cfg{ArchKind::Baseline, GcPolicy::Parallel},
                      Cfg{ArchKind::BW, GcPolicy::Parallel},
                      Cfg{ArchKind::BW, GcPolicy::TinyTail},
                      Cfg{ArchKind::DSSDNoc, GcPolicy::Parallel}}) {
            ExpParams p;
            p.arch = c.arch;
            p.gcPolicy = c.pol;
            p.channels = 8;
            p.ways = 4;
            p.planes = 8;
            p.traceName = t;
            p.bufferMode = BufferMode::Real;
            p.window = 25 * tickMs;
            p.seed = o.seed;
            ExpResult r = runExperiment(p);
            lat[i++] = r.avgLatencyUs;
        }
        std::printf("%-8s  %10.3f  %10.3f  %10.3f  %10.3f\n", t, 1.0,
                    lat[1] / lat[0], lat[2] / lat[0], lat[3] / lat[0]);
        for (int j = 0; j < 4; ++j)
            sums[j] += lat[j] / lat[0];
    }
    int n = static_cast<int>(std::size(traces));
    std::printf("%-8s  %10.3f  %10.3f  %10.3f  %10.3f\n", "average",
                sums[0] / n, sums[1] / n, sums[2] / n, sums[3] / n);
    return 0;
}
