/**
 * @file
 * Fig 17 (extension): behaviour under media faults — (a) effective
 * bandwidth and tail latency vs. raw-bit-error-rate scale for Baseline
 * vs. dSSD_f, (b) superblock deaths per DSM scheme when random media
 * faults are merged into the wear model.
 *
 * The paper's figures assume a healthy device; this bench turns on the
 * fault-injection subsystem (src/fault) and sweeps its severity. Two
 * effects should be visible:
 *
 *  - the recovery ladder (read-retry rounds, soft decode, front-end
 *    re-reads of failed copybacks) costs Baseline more tail than
 *    dSSD_f, because Baseline recovers over the shared front-end while
 *    the decoupled controllers absorb most retries locally;
 *  - RECYCLED/RESERV repair faulted sub-blocks from the RBT, so they
 *    retire fewer superblocks than STATIC for the same fault stream.
 */

#include <cstdio>

#include "bench/harness.hh"
#include "core/dsm.hh"

using namespace dssd;
using namespace dssd::bench;

namespace
{

constexpr double kScales[] = {0.0, 0.5, 1.0, 2.0, 4.0};

ExpParams
faultPoint(const BenchOpts &o, ArchKind arch, double scale)
{
    ExpParams p;
    p.arch = arch;
    p.readRatio = 0.7;
    p.sequential = false;
    p.bufferMode = BufferMode::AlwaysMiss;
    p.window = (o.full ? 30 : 15) * tickMs;
    p.seed = o.seed;
    // Optional array front-end (--shards / --engine-threads); the
    // fault model then runs independently per shard.
    if (o.shards > 0) {
        p.shards = o.shards;
        p.queueDepth = 64 * o.shards;
    }
    p.engineThreads = o.engineThreads;
    p.fault.enabled = true;
    p.fault.seed = o.faultSeed;
    p.fault.rberScale = scale;
    // Exercise the fNoC CRC/retransmit path on dSSD_f as well; the
    // rate scales with the same knob so "more faults" means more of
    // everything.
    if (arch == ArchKind::DSSDNoc)
        p.fault.nocCrcProb = 1e-4 * scale;
    return p;
}

void
runDsmScheme(DsmScheme scheme, const BenchOpts &o, double scale,
             JsonSeriesWriter &json)
{
    SsdConfig c = makeConfig(ArchKind::DSSDNoc);
    c.geom = paperTlcGeometry();
    c.geom.blocksPerPlane = o.full ? 64 : 24;
    c.geom.pagesPerBlock = o.full ? 32 : 8;
    c.timing = tlcTiming();
    c.fault.enabled = true;
    c.fault.seed = o.faultSeed;
    c.fault.rberScale = scale;

    Engine engine;
    Ssd ssd(engine, c);
    SuperblockMapping map(c.geom, 0.0);

    DsmParams p;
    p.scheme = scheme;
    p.wear.peMean = o.full ? 200 : 60;
    p.wear.peSigma = 0.148 * p.wear.peMean;
    p.reservedFraction = 0.07;
    p.seed = o.seed;

    DynamicSuperblockEngine eng(ssd, map, p);
    eng.run(o.full ? 20000 : 4000, [] {});
    engine.run();

    const DsmStats &s = eng.stats();
    double tb = static_cast<double>(s.bytesWritten) / 1e12;
    std::printf("%-9s  %8llu  %10.4f  %6u  %8llu  %8llu  %10llu  %10llu\n",
                dsmSchemeName(scheme),
                static_cast<unsigned long long>(s.cycles), tb,
                s.deadSuperblocks,
                static_cast<unsigned long long>(s.faultEvents),
                static_cast<unsigned long long>(s.remapEvents),
                static_cast<unsigned long long>(s.repairPagesCopied),
                static_cast<unsigned long long>(s.deathPagesCopied));
    std::string tag = dsmSchemeName(scheme);
    json.add(tag + "_dead", s.deadSuperblocks);
    json.add(tag + "_fault_events", static_cast<double>(s.faultEvents));
    json.add(tag + "_written_tb", tb);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOpts o = BenchOpts::parse(argc, argv);
    JsonSeriesWriter json;

    banner("Fig 17(a)",
           "bandwidth and tail latency vs. RBER scale (70%rd rand 4KB)");

    std::vector<ExpParams> ps;
    for (double scale : kScales) {
        ps.push_back(faultPoint(o, ArchKind::Baseline, scale));
        ps.push_back(faultPoint(o, ArchKind::DSSDNoc, scale));
    }
    // Observability hooks go to one representative point: dSSD_f at
    // the nominal fault rate.
    for (ExpParams &p : ps) {
        if (p.arch == ArchKind::DSSDNoc && p.fault.rberScale == 1.0) {
            p.tracePath = o.trace;
            p.statsPath = o.stats;
        }
    }
    std::vector<ExpResult> rs = runExperiments(ps, o.resolvedThreads());

    std::printf("%-6s  %12s  %9s  %9s  %12s  %9s  %9s\n", "scale",
                "base BW", "base p99", "p99.9", "dSSD_f BW", "p99",
                "p99.9");
    for (std::size_t i = 0; i < std::size(kScales); ++i) {
        const ExpResult &b = rs[2 * i];
        const ExpResult &d = rs[2 * i + 1];
        std::printf("%-6.2g  %12s  %9.1f  %9.1f  %12s  %9.1f  %9.1f\n",
                    kScales[i], formatBandwidth(b.ioBytesPerSec).c_str(),
                    b.p99LatencyUs, b.p999LatencyUs,
                    formatBandwidth(d.ioBytesPerSec).c_str(),
                    d.p99LatencyUs, d.p999LatencyUs);
        json.add("scale", kScales[i]);
        json.add("baseline_bw", b.ioBytesPerSec);
        json.add("baseline_p99_us", b.p99LatencyUs);
        json.add("baseline_p999_us", b.p999LatencyUs);
        json.add("dssdf_bw", d.ioBytesPerSec);
        json.add("dssdf_p99_us", d.p99LatencyUs);
        json.add("dssdf_p999_us", d.p999LatencyUs);
    }
    if (rs[0].p99LatencyUs > 0 && rs[1].p99LatencyUs > 0) {
        std::size_t last = std::size(kScales) - 1;
        std::printf("\ntail degradation at scale %.2g: Baseline %.2fx, "
                    "dSSD_f %.2fx\n",
                    kScales[last],
                    rs[2 * last].p99LatencyUs / rs[0].p99LatencyUs,
                    rs[2 * last + 1].p99LatencyUs / rs[1].p99LatencyUs);
    }

    rule();
    banner("Fig 17(b)",
           "superblock deaths per DSM scheme with media faults merged "
           "into wear (dSSD_f, TLC, RBER scale 2)");
    std::printf("%-9s  %8s  %10s  %6s  %8s  %8s  %10s  %10s\n", "scheme",
                "cycles", "written(TB)", "dead", "faults", "remaps",
                "repairpgs", "deathpgs");
    for (DsmScheme s :
         {DsmScheme::Static, DsmScheme::Recycled, DsmScheme::Reserv})
        runDsmScheme(s, o, 2.0, json);
    std::printf("\nReading the tables: the recovery ladder inflates "
                "everyone's tail as the error rate grows, but Baseline "
                "pays for every retry on the shared front-end while "
                "dSSD_f retries inside the channel controllers; and "
                "RECYCLED/RESERV convert faulted sub-blocks into RBT "
                "repairs instead of whole-superblock deaths.\n");

    json.writeIfRequested(o, "fig17_faults");
    return 0;
}
