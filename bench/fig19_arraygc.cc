/**
 * @file
 * Fig 19: array tail latency vs load under array-level GC
 * coordination and rotating parity, Baseline vs dSSD_f.
 *
 * Uncoordinated per-shard GC is what destroys array-level tail
 * latency: a striped request is as slow as whichever shard happens to
 * be collecting, so at high load the array p99.9 degenerates to the
 * per-shard GC latency. The sweep compares the ArrayGcScheduler
 * policies (uncoordinated / staggered / token / greedy) across queue
 * depths, with parity off and on: parity adds one parity-page write
 * per data write (stolen bandwidth) but lets reads reconstruct from
 * the N-1 peer shards while their data shard holds a GC grant, which
 * is where the degraded-read path earns its keep.
 *
 * Every point runs the same forced-GC interference loop the other
 * figures use, so GC pressure persists over the whole window. The
 * whole sweep is deterministic: stdout, --json and --stats are
 * byte-identical for any engine-group worker count (1 = serial
 * reference, CI diffs 1 vs 8, as for fig18); --engine-threads=0 is
 * the legacy shared-engine timing model, where the scheduler still
 * makes the same grant decisions (unit-tested) but same-tick I/O
 * interleavings — and hence percentiles — legitimately differ.
 */

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/harness.hh"
#include "sim/log.hh"

using namespace dssd;
using namespace dssd::bench;

namespace
{

constexpr unsigned kShards = 4;
constexpr unsigned kDepths[] = {8, 32, 128};
constexpr ArchKind kArchs[] = {ArchKind::Baseline, ArchKind::DSSDNoc};
constexpr ArrayGcPolicy kPolicies[] = {
    ArrayGcPolicy::Uncoordinated,
    ArrayGcPolicy::Staggered,
    ArrayGcPolicy::TokenBucket,
    ArrayGcPolicy::GlobalGreedy,
};
constexpr bool kParity[] = {false, true};

} // namespace

int
main(int argc, char **argv)
{
    BenchOpts o = BenchOpts::parse(argc, argv);
    JsonSeriesWriter json;
    banner("Fig 19",
           "array p99/p99.9 vs load: GC coordination + parity");

    ExpParams base;
    base.channels = 4;
    base.ways = o.full ? 4 : 2;
    base.planes = 4;
    base.blocksPerPlane = 16;
    base.pagesPerBlock = 16;
    base.requestBytes = 4 * kKiB;
    base.readRatio = 0.5;
    base.sequential = false;
    base.bufferMode = BufferMode::Real;
    base.shards = kShards;
    base.window = 10 * tickMs;
    base.seed = o.seed;

    std::vector<ExpParams> ps;
    for (ArchKind k : kArchs) {
        for (bool parity : kParity) {
            for (ArrayGcPolicy policy : kPolicies) {
                for (unsigned qd : kDepths) {
                    ExpParams p = base;
                    p.arch = k;
                    p.parity = parity;
                    p.arrayGc = policy;
                    p.queueDepth = qd;
                    p.engineThreads = o.engineThreads;
                    ps.push_back(p);
                }
            }
        }
    }
    // Observability hooks go to one representative point: dSSD_f,
    // parity on, staggered, highest load — the configuration the
    // degraded-read and CI bit-identity claims are about.
    for (ExpParams &p : ps) {
        if (p.arch == ArchKind::DSSDNoc && p.parity &&
            p.arrayGc == ArrayGcPolicy::Staggered &&
            p.queueDepth == kDepths[std::size(kDepths) - 1]) {
            p.tracePath = o.trace;
            p.statsPath = o.stats;
        }
    }

    std::vector<ExpResult> rs;
    std::vector<double> wall_ms(ps.size(), 0.0);
    if (o.timing) {
        rs.resize(ps.size());
        for (std::size_t i = 0; i < ps.size(); ++i) {
            auto t0 = std::chrono::steady_clock::now();
            rs[i] = runExperiment(ps[i]);
            auto t1 = std::chrono::steady_clock::now();
            wall_ms[i] =
                std::chrono::duration<double, std::milli>(t1 - t0)
                    .count();
            std::fprintf(stderr,
                         "[timing] %s %s%s qd=%u engine-threads=%u: "
                         "%.1f ms\n",
                         archName(ps[i].arch),
                         arrayGcPolicyName(ps[i].arrayGc),
                         ps[i].parity ? "+parity" : "",
                         ps[i].queueDepth, ps[i].engineThreads,
                         wall_ms[i]);
        }
    } else {
        rs = runExperiments(ps, o.resolvedThreads());
    }

    std::size_t idx = 0;
    for (ArchKind k : kArchs) {
        for (bool parity : kParity) {
            std::printf("\n%s, %u shards, parity %s\n", archName(k),
                        kShards, parity ? "on" : "off");
            std::printf("%-14s", "policy");
            for (unsigned qd : kDepths)
                std::printf("  %7s%-3u %7s%-3u %7s%-3u", "p99@", qd,
                            "p999@", qd, "rdp999@", qd);
            std::printf("\n");
            for (ArrayGcPolicy policy : kPolicies) {
                std::printf("%-14s", arrayGcPolicyName(policy));
                for (std::size_t d = 0; d < std::size(kDepths); ++d) {
                    const ExpResult &r = rs[idx++];
                    std::printf("  %10.1f %10.1f %10.1f",
                                r.p99LatencyUs, r.p999LatencyUs,
                                r.readP999LatencyUs);
                    const char *par = parity ? "parity" : "noparity";
                    json.add(strformat("%s/%s/%s/p99_us", archName(k),
                                       par, arrayGcPolicyName(policy)),
                             r.p99LatencyUs);
                    json.add(strformat("%s/%s/%s/p999_us", archName(k),
                                       par, arrayGcPolicyName(policy)),
                             r.p999LatencyUs);
                    json.add(strformat("%s/%s/%s/read_p999_us",
                                       archName(k), par,
                                       arrayGcPolicyName(policy)),
                             r.readP999LatencyUs);
                    if (o.timing) {
                        json.add(strformat("%s/%s/%s/wall_ms",
                                           archName(k), par,
                                           arrayGcPolicyName(policy)),
                                 wall_ms[idx - 1]);
                    }
                }
                std::printf("\n");
            }
            rule();
        }
    }
    json.writeIfRequested(o, "fig19_arraygc");
    return 0;
}
