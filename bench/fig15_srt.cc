/**
 * @file
 * Fig 15: (a) worst-case synthetic performance impact as the number
 * of active SRT entries grows (ULL vs TLC, read vs write); (b) the
 * endurance/performance-overhead metric per trace, grouped into read-
 * and write-intensive sets (RESERV dSSD vs BASELINE).
 */

#include <cstdio>

#include "bench/harness.hh"
#include "reliability/endurance.hh"

using namespace dssd;
using namespace dssd::bench;

namespace
{

double
avgLat(bool tlc, double read_ratio, unsigned srt_entries,
       const char *trace, std::uint64_t seed)
{
    ExpParams p;
    p.arch = ArchKind::DSSDNoc;
    p.channels = 8;
    p.ways = 4;
    p.planes = tlc ? 2 : 8;
    // Enough blocks per channel (>= 2048) that the SRT-entry sweep is
    // not capped by device size.
    p.blocksPerPlane = tlc ? 256 : 64;
    p.pagesPerBlock = 16;
    p.tlc = tlc;
    p.readRatio = read_ratio;
    p.sequential = false;
    p.requestBytes = tlc ? 16 * kKiB : 4 * kKiB;
    p.bufferMode = BufferMode::AlwaysMiss;
    p.traceName = trace;
    p.srtRemapsPerChannel = srt_entries;
    p.srtCapacity = 4096;
    p.runGc = false; // isolate the remapping effect
    p.window = 20 * tickMs;
    p.seed = seed;
    ExpResult r = runExperiment(p);
    return r.avgLatencyUs;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOpts o = BenchOpts::parse(argc, argv);

    banner("Fig 15(a)",
           "performance impact vs active SRT entries (random I/O, "
           "normalized to 0 entries)");
    std::printf("%-8s  %10s  %10s  %10s  %10s\n", "entries", "ULL-rd",
                "ULL-wr", "TLC-rd", "TLC-wr");
    double base[4] = {0, 0, 0, 0};
    for (unsigned n : {0u, 128u, 512u, 1024u, 2048u}) {
        double v[4];
        v[0] = avgLat(false, 1.0, n, nullptr, o.seed);
        v[1] = avgLat(false, 0.0, n, nullptr, o.seed);
        v[2] = avgLat(true, 1.0, n, nullptr, o.seed);
        v[3] = avgLat(true, 0.0, n, nullptr, o.seed);
        if (n == 0)
            for (int i = 0; i < 4; ++i)
                base[i] = v[i];
        std::printf("%-8u  %10.3f  %10.3f  %10.3f  %10.3f\n", n,
                    v[0] / base[0], v[1] / base[1], v[2] / base[2],
                    v[3] / base[3]);
    }

    rule();
    banner("Fig 15(b)",
           "endurance / performance-overhead metric per trace "
           "(RESERV vs BASELINE; higher is better)");
    // Endurance gain of RESERV, shared by all traces.
    EnduranceParams ep;
    ep.superblocks = o.full ? 4096 : 1024;
    ep.wear.peMean = o.full ? 5578.0 : 800.0;
    ep.wear.peSigma = 0.148 * ep.wear.peMean;
    ep.seed = o.seed;
    ep.scheme = SuperblockScheme::Baseline;
    double e_base =
        EnduranceSim(ep).run().dataUntilBadFraction(0.10, ep.superblocks);
    ep.scheme = SuperblockScheme::Reserv;
    double e_res =
        EnduranceSim(ep).run().dataUntilBadFraction(0.10, ep.superblocks);
    double endurance_gain = e_res / e_base;
    std::printf("RESERV endurance gain: %.3f\n\n", endurance_gain);

    std::printf("%-10s  %-6s  %12s  %12s\n", "trace", "class",
                "perf ovhd", "metric");
    const char *traces[] = {"usr_2", "hm_1", "web_0", "proj_3",
                            "prn_0", "src1_2", "proj_0", "rsrch_0"};
    double sum_read = 0, sum_write = 0;
    int n_read = 0, n_write = 0;
    for (const char *t : traces) {
        TraceProfile prof = traceProfile(t);
        double lat0 = avgLat(true, 0, 0, t, o.seed);
        // Steady-state active remap population: a ~12% slice of the
        // channel's blocks (Fig 16(b) saturates near this level), not
        // the worst-case full-device remapping of Fig 15(a).
        double lat1 = avgLat(true, 0, 256, t, o.seed);
        double ovhd = lat1 / lat0;
        double metric = endurance_gain / ovhd;
        bool rd = isReadIntensive(prof);
        std::printf("%-10s  %-6s  %12.3f  %12.3f\n", t,
                    rd ? "read" : "write", ovhd, metric);
        if (rd) {
            sum_read += metric;
            ++n_read;
        } else {
            sum_write += metric;
            ++n_write;
        }
    }
    std::printf("\naverage metric (read-intensive):  %.3f\n",
                sum_read / n_read);
    std::printf("average metric (write-intensive): %.3f\n",
                sum_write / n_write);
    std::printf("(BASELINE metric = 1.0 by construction)\n");
    return 0;
}
