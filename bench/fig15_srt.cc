/**
 * @file
 * Fig 15: (a) worst-case synthetic performance impact as the number
 * of active SRT entries grows (ULL vs TLC, read vs write); (b) the
 * endurance/performance-overhead metric per trace, grouped into read-
 * and write-intensive sets (RESERV dSSD vs BASELINE).
 *
 * The synthetic grid and the per-trace pairs batch through the
 * parallel sweep runner; printing stays in sweep order.
 */

#include <cstdio>
#include <vector>

#include "bench/harness.hh"
#include "reliability/endurance.hh"
#include "sim/log.hh"

using namespace dssd;
using namespace dssd::bench;

namespace
{

ExpParams
latParams(bool tlc, double read_ratio, unsigned srt_entries,
          const char *trace, std::uint64_t seed)
{
    ExpParams p;
    p.arch = ArchKind::DSSDNoc;
    p.channels = 8;
    p.ways = 4;
    p.planes = tlc ? 2 : 8;
    // Enough blocks per channel (>= 2048) that the SRT-entry sweep is
    // not capped by device size.
    p.blocksPerPlane = tlc ? 256 : 64;
    p.pagesPerBlock = 16;
    p.tlc = tlc;
    p.readRatio = read_ratio;
    p.sequential = false;
    p.requestBytes = tlc ? 16 * kKiB : 4 * kKiB;
    p.bufferMode = BufferMode::AlwaysMiss;
    p.traceName = trace;
    p.srtRemapsPerChannel = srt_entries;
    p.srtCapacity = 4096;
    p.runGc = false; // isolate the remapping effect
    p.window = 20 * tickMs;
    p.seed = seed;
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOpts o = BenchOpts::parse(argc, argv);
    unsigned threads = o.resolvedThreads();
    JsonSeriesWriter json;

    banner("Fig 15(a)",
           "performance impact vs active SRT entries (random I/O, "
           "normalized to 0 entries)");
    std::printf("%-8s  %10s  %10s  %10s  %10s\n", "entries", "ULL-rd",
                "ULL-wr", "TLC-rd", "TLC-wr");
    const unsigned entries[] = {0u, 128u, 512u, 1024u, 2048u};
    // Per entry count: ULL-read, ULL-write, TLC-read, TLC-write.
    std::vector<ExpParams> ps;
    for (unsigned n : entries) {
        ps.push_back(latParams(false, 1.0, n, nullptr, o.seed));
        ps.push_back(latParams(false, 0.0, n, nullptr, o.seed));
        ps.push_back(latParams(true, 1.0, n, nullptr, o.seed));
        ps.push_back(latParams(true, 0.0, n, nullptr, o.seed));
    }
    std::vector<ExpResult> rs = runExperiments(ps, threads);
    const char *cols[4] = {"ull_rd", "ull_wr", "tlc_rd", "tlc_wr"};
    double base[4] = {0, 0, 0, 0};
    for (std::size_t e = 0; e < 5; ++e) {
        double v[4];
        for (int i = 0; i < 4; ++i)
            v[i] = rs[e * 4 + static_cast<std::size_t>(i)].avgLatencyUs;
        if (entries[e] == 0)
            for (int i = 0; i < 4; ++i)
                base[i] = v[i];
        std::printf("%-8u  %10.3f  %10.3f  %10.3f  %10.3f\n", entries[e],
                    v[0] / base[0], v[1] / base[1], v[2] / base[2],
                    v[3] / base[3]);
        for (int i = 0; i < 4; ++i)
            json.add(strformat("a/%s", cols[i]), v[i] / base[i]);
    }

    rule();
    banner("Fig 15(b)",
           "endurance / performance-overhead metric per trace "
           "(RESERV vs BASELINE; higher is better)");
    // Endurance gain of RESERV, shared by all traces.
    const SuperblockScheme eschemes[] = {SuperblockScheme::Baseline,
                                         SuperblockScheme::Reserv};
    std::vector<double> edata(2);
    parallelFor(2, threads, [&](std::size_t i) {
        EnduranceParams ep;
        ep.superblocks = o.full ? 4096 : 1024;
        ep.wear.peMean = o.full ? 5578.0 : 800.0;
        ep.wear.peSigma = 0.148 * ep.wear.peMean;
        ep.seed = o.seed;
        ep.scheme = eschemes[i];
        edata[i] = EnduranceSim(ep).run().dataUntilBadFraction(
            0.10, ep.superblocks);
    });
    double endurance_gain = edata[1] / edata[0];
    std::printf("RESERV endurance gain: %.3f\n\n", endurance_gain);

    std::printf("%-10s  %-6s  %12s  %12s\n", "trace", "class",
                "perf ovhd", "metric");
    const char *traces[] = {"usr_2", "hm_1", "web_0", "proj_3",
                            "prn_0", "src1_2", "proj_0", "rsrch_0"};
    // Per trace: remap-free baseline, then the steady-state active
    // remap population — a ~12% slice of the channel's blocks (Fig
    // 16(b) saturates near this level), not the worst-case full-device
    // remapping of Fig 15(a).
    std::vector<ExpParams> tp;
    for (const char *t : traces) {
        tp.push_back(latParams(true, 0, 0, t, o.seed));
        tp.push_back(latParams(true, 0, 256, t, o.seed));
    }
    std::vector<ExpResult> tr = runExperiments(tp, threads);
    double sum_read = 0, sum_write = 0;
    int n_read = 0, n_write = 0;
    for (std::size_t i = 0; i < 8; ++i) {
        const char *t = traces[i];
        TraceProfile prof = traceProfile(t);
        double lat0 = tr[i * 2].avgLatencyUs;
        double lat1 = tr[i * 2 + 1].avgLatencyUs;
        double ovhd = lat1 / lat0;
        double metric = endurance_gain / ovhd;
        bool rd = isReadIntensive(prof);
        std::printf("%-10s  %-6s  %12.3f  %12.3f\n", t,
                    rd ? "read" : "write", ovhd, metric);
        json.add("b/perf_ovhd", ovhd);
        json.add("b/metric", metric);
        if (rd) {
            sum_read += metric;
            ++n_read;
        } else {
            sum_write += metric;
            ++n_write;
        }
    }
    std::printf("\naverage metric (read-intensive):  %.3f\n",
                sum_read / n_read);
    std::printf("average metric (write-intensive): %.3f\n",
                sum_write / n_write);
    std::printf("(BASELINE metric = 1.0 by construction)\n");
    json.writeIfRequested(o, "fig15_srt");
    return 0;
}
