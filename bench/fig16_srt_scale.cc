/**
 * @file
 * Fig 16: (a) endurance improvement vs SRT capacity for growing SSD
 * capacities (number of superblocks); (b) active SRT entries vs
 * remapping events for RECYCLED and RESERV with an unbounded SRT.
 */

#include <cstdio>

#include "bench/harness.hh"
#include "reliability/endurance.hh"

using namespace dssd;
using namespace dssd::bench;

namespace
{

EnduranceParams
eparams(std::uint32_t superblocks, std::uint64_t seed)
{
    EnduranceParams p;
    p.channels = 8;
    p.superblocks = superblocks;
    // Scaled wear so the largest capacity stays tractable; the
    // sigma/mean ratio matches Table 1.
    p.wear.peMean = 300.0;
    p.wear.peSigma = 44.4;
    p.stopBadFraction = 0.5;
    p.seed = seed;
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOpts o = BenchOpts::parse(argc, argv);

    banner("Fig 16(a)",
           "endurance improvement vs SRT entries, by SSD capacity "
           "(norm to BASELINE)");
    const std::uint32_t caps_small[] = {512, 2048, 8192};
    const std::uint32_t caps_full[] = {4096, 32768, 131072};
    const std::uint32_t *caps = o.full ? caps_full : caps_small;
    std::printf("%-12s", "SRT entries");
    for (int c = 0; c < 3; ++c)
        std::printf("  %8usb", caps[c]);
    std::printf("\n");
    for (std::size_t entries : {16u, 64u, 256u, 1024u, 4096u}) {
        std::printf("%-12zu", entries);
        for (int c = 0; c < 3; ++c) {
            EnduranceParams p = eparams(caps[c], o.seed);
            p.scheme = SuperblockScheme::Baseline;
            double b = EnduranceSim(p).run().dataUntilBadFraction(
                0.10, p.superblocks);
            p.scheme = SuperblockScheme::Recycled;
            p.srtCapacityPerChannel = entries;
            double r = EnduranceSim(p).run().dataUntilBadFraction(
                0.10, p.superblocks);
            std::printf("  %10.3f", r / b);
        }
        std::printf("\n");
    }

    rule();
    banner("Fig 16(b)",
           "active SRT entries vs remapping events (infinite SRT, "
           "channel 0)");
    for (SuperblockScheme s :
         {SuperblockScheme::Recycled, SuperblockScheme::Reserv}) {
        EnduranceParams p = eparams(o.full ? 8192 : 2048, o.seed);
        p.scheme = s;
        p.srtCapacityPerChannel = 0;
        p.stopBadFraction = 0.9;
        p.reservedFraction = 0.07;
        EnduranceResult r = EnduranceSim(p).run();
        std::printf("\n[%s] (%zu samples, high-water %zu)\n",
                    schemeName(s), r.srtActivity.size(),
                    r.srtHighWater);
        std::size_t n = r.srtActivity.size();
        std::size_t stride = std::max<std::size_t>(1, n / 10);
        for (std::size_t i = 0; i < n; i += stride) {
            std::printf("  remaps %8llu  ->  active %6zu\n",
                        static_cast<unsigned long long>(
                            r.srtActivity[i].remapEvents),
                        r.srtActivity[i].activeEntries);
        }
    }
    std::printf("\nExpected shape: active entries grow, then saturate "
                "once no static superblocks remain; RESERV sits "
                "higher.\n");
    return 0;
}
