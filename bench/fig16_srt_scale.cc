/**
 * @file
 * Fig 16: (a) endurance improvement vs SRT capacity for growing SSD
 * capacities (number of superblocks); (b) active SRT entries vs
 * remapping events for RECYCLED and RESERV with an unbounded SRT.
 *
 * Every endurance run fans out over the harness worker pool; tables
 * print afterwards in sweep order.
 */

#include <cstdio>
#include <vector>

#include "bench/harness.hh"
#include "reliability/endurance.hh"
#include "sim/log.hh"

using namespace dssd;
using namespace dssd::bench;

namespace
{

EnduranceParams
eparams(std::uint32_t superblocks, std::uint64_t seed)
{
    EnduranceParams p;
    p.channels = 8;
    p.superblocks = superblocks;
    // Scaled wear so the largest capacity stays tractable; the
    // sigma/mean ratio matches Table 1.
    p.wear.peMean = 300.0;
    p.wear.peSigma = 44.4;
    p.stopBadFraction = 0.5;
    p.seed = seed;
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOpts o = BenchOpts::parse(argc, argv);
    unsigned threads = o.resolvedThreads();
    JsonSeriesWriter json;

    banner("Fig 16(a)",
           "endurance improvement vs SRT entries, by SSD capacity "
           "(norm to BASELINE)");
    const std::uint32_t caps_small[] = {512, 2048, 8192};
    const std::uint32_t caps_full[] = {4096, 32768, 131072};
    const std::uint32_t *caps = o.full ? caps_full : caps_small;
    const std::size_t entries[] = {16u, 64u, 256u, 1024u, 4096u};
    std::printf("%-12s", "SRT entries");
    for (int c = 0; c < 3; ++c)
        std::printf("  %8usb", caps[c]);
    std::printf("\n");
    // The BASELINE normalizer depends only on the capacity, so one run
    // per capacity serves every row; the RECYCLED grid is one run per
    // (entries x capacity) cell.
    std::vector<double> norm(3);
    parallelFor(norm.size(), threads, [&](std::size_t c) {
        EnduranceParams p = eparams(caps[c], o.seed);
        p.scheme = SuperblockScheme::Baseline;
        norm[c] = EnduranceSim(p).run().dataUntilBadFraction(
            0.10, p.superblocks);
    });
    std::vector<double> improved(5 * 3);
    parallelFor(improved.size(), threads, [&](std::size_t cell) {
        EnduranceParams p = eparams(caps[cell % 3], o.seed);
        p.scheme = SuperblockScheme::Recycled;
        p.srtCapacityPerChannel = entries[cell / 3];
        improved[cell] = EnduranceSim(p).run().dataUntilBadFraction(
            0.10, p.superblocks);
    });
    for (std::size_t e = 0; e < 5; ++e) {
        std::printf("%-12zu", entries[e]);
        for (std::size_t c = 0; c < 3; ++c) {
            double v = improved[e * 3 + c] / norm[c];
            std::printf("  %10.3f", v);
            json.add(strformat("a/%usb", caps[c]), v);
        }
        std::printf("\n");
    }

    rule();
    banner("Fig 16(b)",
           "active SRT entries vs remapping events (infinite SRT, "
           "channel 0)");
    const SuperblockScheme schemes[] = {SuperblockScheme::Recycled,
                                        SuperblockScheme::Reserv};
    std::vector<EnduranceResult> rb(2);
    parallelFor(2, threads, [&](std::size_t i) {
        EnduranceParams p = eparams(o.full ? 8192 : 2048, o.seed);
        p.scheme = schemes[i];
        p.srtCapacityPerChannel = 0;
        p.stopBadFraction = 0.9;
        p.reservedFraction = 0.07;
        rb[i] = EnduranceSim(p).run();
    });
    for (std::size_t i = 0; i < 2; ++i) {
        const EnduranceResult &r = rb[i];
        std::printf("\n[%s] (%zu samples, high-water %zu)\n",
                    schemeName(schemes[i]), r.srtActivity.size(),
                    r.srtHighWater);
        std::size_t n = r.srtActivity.size();
        std::size_t stride = std::max<std::size_t>(1, n / 10);
        for (std::size_t j = 0; j < n; j += stride) {
            std::printf("  remaps %8llu  ->  active %6zu\n",
                        static_cast<unsigned long long>(
                            r.srtActivity[j].remapEvents),
                        r.srtActivity[j].activeEntries);
        }
    }
    std::printf("\nExpected shape: active entries grow, then saturate "
                "once no static superblocks remain; RESERV sits "
                "higher.\n");
    json.writeIfRequested(o, "fig16_srt_scale");
    return 0;
}
