/**
 * @file
 * Shared harness for the per-figure/table bench binaries.
 *
 * Every bench prints the same rows/series the corresponding paper
 * figure or table reports (normalized where the paper normalizes).
 * Absolute numbers come from our simulator, so EXPERIMENTS.md records
 * shape-vs-paper, not value-vs-paper.
 *
 * All benches run a reduced geometry by default (identical ratios,
 * smaller capacity) and accept --full for the Table 1 geometry.
 */

#ifndef DSSD_BENCH_HARNESS_HH
#define DSSD_BENCH_HARNESS_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "core/array.hh"
#include "core/config.hh"
#include "core/gc.hh"
#include "core/ssd.hh"
#include "hil/driver.hh"
#include "hil/nvme_host.hh"
#include "workload/arrival.hh"

namespace dssd
{
namespace bench
{

/** Command-line options shared by all benches. */
struct BenchOpts
{
    bool full = false;   ///< use the paper's full geometry
    std::uint64_t seed = 1;
    /// Worker threads for sweep fan-out (0 = hardware_concurrency).
    unsigned threads = 0;
    /// When non-empty, also emit the bench's series to this JSON file.
    std::string json;
    /// When non-empty, the bench arms Chrome-trace emission on one
    /// representative experiment and writes the events here.
    std::string trace;
    /// When non-empty, the bench dumps that experiment's StatRegistry
    /// JSON here ("-" = stdout).
    std::string stats;
    /// Enable the fault-injection model (off by default so every bench
    /// reproduces its figure bit-identically).
    bool faults = false;
    /// Seed for the fault model's RNG streams (decoupled from the
    /// workload seed so fault draws don't perturb request streams).
    std::uint64_t faultSeed = 99;
    /// Override the bench's shard count (0 = bench default; fig18
    /// sweeps its own counts and ignores this).
    unsigned shards = 0;
    /// Per-experiment engine-group workers: 0 runs every shard on one
    /// shared engine (the pre-group serial path); >= 1 gives each
    /// shard its own engine under the conservative EngineGroup, with
    /// that many worker threads (1 = serial reference; any N is
    /// bit-identical to it).
    unsigned engineThreads = 0;
    /// Emit wall-clock timings to stderr (and a timing series into
    /// --json). Stdout stays byte-identical with or without it.
    bool timing = false;
    /// Array-level GC coordination policy override (benches that
    /// sweep policies themselves, like fig19, ignore it).
    ArrayGcPolicy arrayGc = ArrayGcPolicy::Uncoordinated;
    /// Rotating-parity striping + degraded reads (shards >= 2).
    bool parity = false;
    /// Multi-tenant host overrides (fig20): raw --tenants spec (see
    /// parseTenantSpec), empty = bench default tenant mix.
    std::string tenants;
    /// --arbiter policy override (benches that sweep policies
    /// themselves ignore it).
    std::string arbiter;
    /// --arrival spec override (see parseArrivalSpec).
    std::string arrival;
    /// --slo latency target override in microseconds (0 = bench
    /// default).
    double sloUs = 0.0;
    /// --gc-policy / --alloc-policy overrides (benches that sweep the
    /// policy zoo themselves, like fig21, ignore them). Empty = bench
    /// default ("greedy" / "rr").
    std::string gcPolicy;
    std::string allocPolicy;
    /// --gc-preempt: preemptible/partial GC rounds (see GcParams).
    bool gcPreempt = false;

    static BenchOpts parse(int argc, char **argv);

    /** Resolved thread count (never 0). */
    unsigned resolvedThreads() const;
};

/** Print a bench banner naming the figure/table being regenerated. */
void banner(const std::string &id, const std::string &what);

/**
 * One fleet tenant of the multi-queue host front-end. When
 * ExpParams::hostTenants is non-empty the experiment drives the
 * device through an NvmeHost (per-tenant queues + arbitration)
 * instead of the single QueueDriver.
 */
struct HostTenant
{
    TenantParams tenant;
    /// Per-tenant synthetic workload.
    double readRatio = 0.5;
    bool sequential = false;
    std::uint64_t requestBytes = 4 * kKiB;
    /// Arrival process; Closed pulls at queue-depth pace, anything
    /// else stamps open-loop arrival times (see workload/arrival.hh).
    ArrivalParams arrival;
};

/** Parameters of one interference experiment. */
struct ExpParams
{
    ArchKind arch = ArchKind::Baseline;

    // Geometry knobs (ratios follow Table 1 unless overridden).
    unsigned channels = 8;
    unsigned ways = 4;
    unsigned planes = 8;
    std::uint32_t blocksPerPlane = 16;
    std::uint32_t pagesPerBlock = 16;
    bool tlc = false;

    // Workload.
    double readRatio = 0.0;
    bool sequential = true;
    std::uint64_t requestBytes = 4 * kKiB;
    /// Hot/cold skew for random streams (see SyntheticParams); both 0
    /// keeps the uniform stream bit-identical to older builds.
    double hotFraction = 0.0;
    double hotAccessRatio = 0.0;
    /// Logical footprint as a fraction of LPN space (utilization).
    /// 0 keeps the historical default (half the logical space).
    double footprintFraction = 0.0;
    BufferMode bufferMode = BufferMode::AlwaysMiss;
    unsigned queueDepth = 64;
    /// Shard count (Fig 18). 1 runs a plain Ssd — bit-identical to the
    /// pre-array harness; >1 runs an SsdArray with modulo sharding.
    unsigned shards = 1;
    /// Engine-group workers (see BenchOpts::engineThreads). Any value
    /// > 0 forces the SsdArray front-end even at shards == 1.
    unsigned engineThreads = 0;
    /// Array-level GC coordination policy (fig19; needs shards > 1 to
    /// matter). Uncoordinated keeps today's per-shard behavior.
    ArrayGcPolicy arrayGc = ArrayGcPolicy::Uncoordinated;
    /// Staggered/GlobalGreedy cap on concurrently-collecting shards.
    unsigned arrayGcMaxConcurrent = 1;
    /// Rotating-parity striping + degraded reads (shards >= 2).
    bool parity = false;
    /// Multi-tenant host front-end (fig20): when non-empty, an
    /// NvmeHost with these tenants replaces the QueueDriver (which
    /// then ignores queueDepth).
    std::vector<HostTenant> hostTenants;
    /// Submission-queue arbitration policy for the host front-end.
    ArbiterPolicy arbiter = ArbiterPolicy::RoundRobin;
    /// Shared device-slot budget gating arbitration (0 = sum of
    /// tenant queue depths; see NvmeHostParams::deviceDepth).
    unsigned hostDeviceDepth = 0;
    const char *traceName = nullptr; ///< overrides synthetic workload
    /// Trace arrival rate (0 = closed-loop). Open-loop replay keeps
    /// the device below saturation so GC interference is what shapes
    /// the tail, as in the paper's timestamped trace runs.
    double traceIops = 0.0;

    // GC.
    bool runGc = true;
    /// true: forced victim rounds re-armed over the window (GC load
    /// held constant). false: GC triggers by the free-block threshold
    /// only, so scheduling policies (PreemptiveGC) can postpone it.
    bool gcForced = true;
    bool continuousGc = true; ///< keep re-forcing GC over the window
    unsigned gcVictims = 2;
    unsigned gcCopiesInFlight = 2;
    Tick gcDelay = 0;         ///< hold GC off for this long (Fig 2)
    GcPolicy gcPolicy = GcPolicy::Parallel;
    /// Victim-selection / allocation policies (see ftl/policy.hh).
    std::string victimPolicy = "greedy";
    std::string allocPolicy = "rr";
    std::uint32_t victimWindow = 8;
    /// Preemptible/partial GC rounds (GcParams::preemptible).
    bool gcPreempt = false;

    // On-chip bandwidth.
    double onChipFactor = 1.25;
    double systemBusGb = 8.0;

    // fNoC overrides (DSSDNoc only). linkGb 0 = derive from factor.
    std::string nocTopology = "mesh";
    double nocLinkGb = 0.0;
    unsigned nocBuffers = 4;

    // SRT pre-population (Fig 15): remaps installed per channel.
    unsigned srtRemapsPerChannel = 0;
    std::size_t srtCapacity = 2048;

    // Fault injection (fig17): disabled by default, so every other
    // bench is bit-identical to a build without the subsystem.
    FaultParams fault;

    // Device preconditioning.
    double prefillFill = 0.8;
    double prefillInvalid = 0.3;

    Tick window = 30 * tickMs;
    std::uint64_t seed = 1;

    // Observability (normally copied from BenchOpts by the bench, for
    // exactly one experiment of the sweep).
    /// When non-empty, attach a Tracer writing Chrome trace_event JSON
    /// here for this experiment's run.
    std::string tracePath;
    /// When non-empty, dump this experiment's StatRegistry JSON here
    /// ("-" = stdout).
    std::string statsPath;
};

/** Per-tenant measurements (host front-end experiments only). */
struct TenantResult
{
    double ioBytesPerSec = 0;
    double avgLatencyUs = 0;
    double p99LatencyUs = 0;
    double p999LatencyUs = 0;
    double sloCompliance = 1.0;
    std::uint64_t completed = 0;
    std::uint64_t dropped = 0;
    std::uint64_t sloViolations = 0;
};

/** Measurements from one interference experiment. */
struct ExpResult
{
    double ioBytesPerSec = 0;      ///< I/O bandwidth over the window
    double gcPagesPerSec = 0;      ///< GC throughput while GC active
    double avgLatencyUs = 0;
    double p99LatencyUs = 0;
    double p999LatencyUs = 0;
    double readAvgLatencyUs = 0;
    double readP99LatencyUs = 0;
    double readP999LatencyUs = 0;
    double busIoUtil = 0;          ///< system-bus utilization by I/O
    double busGcUtil = 0;          ///< system-bus utilization by GC
    LatencyBreakdown ioBreakdown;  ///< mean per-component (ticks)
    LatencyBreakdown cbBreakdown;
    std::uint64_t gcPagesMoved = 0;
    std::uint64_t ioCompleted = 0;
    /// FTL-level write accounting over the window (post-prefill);
    /// summed across shards in array mode.
    std::uint64_t hostPageWrites = 0;
    std::uint64_t gcRelocated = 0;
    /// Write amplification factor (host + GC writes) / host writes.
    double waf = 1.0;
    /// One entry per ExpParams::hostTenants tenant (empty otherwise).
    std::vector<TenantResult> tenants;
    std::vector<double> ioBwSeries;    ///< GB/s per ms window
    std::vector<double> busIoSeries;   ///< utilization per ms window
    std::vector<double> busGcSeries;
    Tick gcStart = 0;
    Tick gcEnd = 0;
};

/** Build an SsdConfig from experiment parameters. */
SsdConfig makeExpConfig(const ExpParams &p);

/** Run one interference experiment to completion. */
ExpResult runExperiment(const ExpParams &p);

/**
 * Run a batch of independent experiments across a worker pool.
 *
 * Each experiment owns its Engine/Ssd/Generator, so points are
 * embarrassingly parallel; results come back in input order and are
 * identical for any thread count (each point is seeded by its params,
 * not by scheduling).
 *
 * @param threads Worker count; 0 picks hardware_concurrency.
 */
std::vector<ExpResult> runExperiments(const std::vector<ExpParams> &ps,
                                      unsigned threads);

/**
 * Generic deterministic fan-out: invoke @p fn(i) for i in [0, n) on up
 * to @p threads workers (0 = hardware_concurrency). @p fn must only
 * touch state owned by iteration i.
 */
void parallelFor(std::size_t n, unsigned threads,
                 const std::function<void(std::size_t)> &fn);

/**
 * Collects named numeric series and writes them as one JSON document
 * ({"bench": id, "series": {name: [v, ...]}}), preserving insertion
 * order. Benches feed it the same values they print so sweeps leave a
 * machine-readable trail next to the human tables.
 */
class JsonSeriesWriter
{
  public:
    /** Append @p v to series @p name (creating it on first use). */
    void add(const std::string &name, double v);

    /** Write the document to @p path; fatal()s if the file can't be opened. */
    void write(const std::string &path, const std::string &bench) const;

    /** Convenience: write only when the bench was given --json. */
    void writeIfRequested(const BenchOpts &opts,
                          const std::string &bench) const;

  private:
    std::vector<std::string> _order;
    std::vector<std::vector<double>> _series;
};

/** Pretty horizontal rule. */
void rule();

} // namespace bench
} // namespace dssd

#endif // DSSD_BENCH_HARNESS_HH
