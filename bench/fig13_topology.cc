/**
 * @file
 * Fig 13: (a) GC performance of 1-D mesh / ring / crossbar fNoCs at
 * equal bisection bandwidth; (b) sensitivity to router buffer size.
 *
 * All grid points run through the parallel sweep runner and print in
 * sweep order afterwards.
 */

#include <cstdio>
#include <vector>

#include "bench/harness.hh"
#include "noc/topology.hh"
#include "sim/log.hh"

using namespace dssd;
using namespace dssd::bench;

namespace
{

ExpParams
gcParams(const std::string &topo, double bisection_gb, unsigned buffers,
         std::uint64_t seed)
{
    auto t = makeTopology(topo, 8);
    ExpParams p;
    p.arch = ArchKind::DSSDNoc;
    p.channels = 8;
    p.ways = 2;
    p.planes = 4;
    p.queueDepth = 0;
    p.nocTopology = topo;
    p.nocLinkGb = bisection_gb / t->bisectionLinks();
    p.nocBuffers = buffers;
    p.window = 40 * tickMs;
    p.gcVictims = 4;
    p.seed = seed;
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOpts o = BenchOpts::parse(argc, argv);
    const char *topos[] = {"mesh", "ring", "crossbar"};
    const double bisections[] = {0.5, 1.0, 2.0, 4.0};
    const unsigned buffers[] = {1u, 2u, 4u, 8u};
    const double bisections_b[] = {0.5, 2.0};

    std::vector<ExpParams> ps;
    for (double bb : bisections)
        for (const char *t : topos)
            ps.push_back(gcParams(t, bb, 4, o.seed));
    std::size_t part_b = ps.size();
    for (unsigned buf : buffers) {
        for (double bb : bisections_b) {
            ps.push_back(gcParams("mesh", bb, buf, o.seed));
            ps.push_back(gcParams("ring", bb, buf, o.seed));
        }
    }
    std::vector<ExpResult> rs = runExperiments(ps, o.resolvedThreads());

    JsonSeriesWriter json;
    banner("Fig 13(a)",
           "GC performance vs bisection bandwidth, equal across "
           "topologies");
    std::printf("%-12s  %10s  %10s  %10s   (GC pages/s)\n", "Bb(GB/s)",
                "mesh", "ring", "crossbar");
    std::size_t idx = 0;
    for (double bb : bisections) {
        std::printf("%-12.1f", bb);
        for (const char *t : topos) {
            double v = rs[idx++].gcPagesPerSec;
            std::printf("  %10.0f", v);
            json.add(strformat("a/%s", t), v);
        }
        std::printf("\n");
    }

    rule();
    banner("Fig 13(b)", "router buffer-size sensitivity");
    std::printf("%-10s  %-12s  %10s  %10s   (GC pages/s)\n", "buffers",
                "Bb(GB/s)", "mesh", "ring");
    idx = part_b;
    for (unsigned buf : buffers) {
        for (double bb : bisections_b) {
            std::printf("%-10u  %-12.1f", buf, bb);
            double mesh = rs[idx++].gcPagesPerSec;
            double ring = rs[idx++].gcPagesPerSec;
            std::printf("  %10.0f", mesh);
            std::printf("  %10.0f\n", ring);
            json.add("b/mesh", mesh);
            json.add("b/ring", ring);
        }
    }
    std::printf("\nExpected shape: mesh ~ crossbar at sufficient Bb; "
                "ring trails (serialization); buffers matter only when "
                "bandwidth is scarce.\n");
    json.writeIfRequested(o, "fig13_topology");
    return 0;
}
