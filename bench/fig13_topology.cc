/**
 * @file
 * Fig 13: (a) GC performance of 1-D mesh / ring / crossbar fNoCs at
 * equal bisection bandwidth; (b) sensitivity to router buffer size.
 */

#include <cstdio>

#include "bench/harness.hh"
#include "noc/topology.hh"

using namespace dssd;
using namespace dssd::bench;

namespace
{

double
gcPerf(const std::string &topo, double bisection_gb, unsigned buffers,
       std::uint64_t seed)
{
    auto t = makeTopology(topo, 8);
    ExpParams p;
    p.arch = ArchKind::DSSDNoc;
    p.channels = 8;
    p.ways = 2;
    p.planes = 4;
    p.queueDepth = 0;
    p.nocTopology = topo;
    p.nocLinkGb = bisection_gb / t->bisectionLinks();
    p.nocBuffers = buffers;
    p.window = 40 * tickMs;
    p.gcVictims = 4;
    p.seed = seed;
    ExpResult r = runExperiment(p);
    return r.gcPagesPerSec;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOpts o = BenchOpts::parse(argc, argv);
    const char *topos[] = {"mesh", "ring", "crossbar"};

    banner("Fig 13(a)",
           "GC performance vs bisection bandwidth, equal across "
           "topologies");
    std::printf("%-12s  %10s  %10s  %10s   (GC pages/s)\n", "Bb(GB/s)",
                "mesh", "ring", "crossbar");
    for (double bb : {0.5, 1.0, 2.0, 4.0}) {
        std::printf("%-12.1f", bb);
        for (const char *t : topos)
            std::printf("  %10.0f", gcPerf(t, bb, 4, o.seed));
        std::printf("\n");
    }

    rule();
    banner("Fig 13(b)", "router buffer-size sensitivity");
    std::printf("%-10s  %-12s  %10s  %10s   (GC pages/s)\n", "buffers",
                "Bb(GB/s)", "mesh", "ring");
    for (unsigned buf : {1u, 2u, 4u, 8u}) {
        for (double bb : {0.5, 2.0}) {
            std::printf("%-10u  %-12.1f", buf, bb);
            std::printf("  %10.0f", gcPerf("mesh", bb, buf, o.seed));
            std::printf("  %10.0f\n", gcPerf("ring", bb, buf, o.seed));
        }
    }
    std::printf("\nExpected shape: mesh ~ crossbar at sufficient Bb; "
                "ring trails (serialization); buffers matter only when "
                "bandwidth is scarce.\n");
    return 0;
}
