/**
 * @file
 * Fig 11: p99 tail latency under GC for workload traces — (a) prn_0
 * percentile profile, (b) average tail-latency improvement of dSSD_f
 * over Baseline / BW / PreemptiveGC / TinyTail across traces.
 */

#include <cstdio>

#include "bench/harness.hh"

using namespace dssd;
using namespace dssd::bench;

namespace
{

struct Scheme
{
    const char *label;
    ArchKind arch;
    GcPolicy pol;
};

constexpr Scheme kSchemes[] = {
    {"Baseline", ArchKind::Baseline, GcPolicy::Parallel},
    {"BW", ArchKind::BW, GcPolicy::Parallel},
    {"PreemptiveGC", ArchKind::Baseline, GcPolicy::Preemptive},
    {"TinyTail", ArchKind::BW, GcPolicy::TinyTail},
    {"dSSD_f", ArchKind::DSSDNoc, GcPolicy::Parallel},
};

double
runTrace(const char *trace, const Scheme &s, const BenchOpts &o)
{
    std::uint64_t seed = o.seed;
    ExpParams p;
    p.arch = s.arch;
    p.gcPolicy = s.pol;
    p.channels = 8;
    p.ways = 4;
    p.planes = 8;
    // Optional array front-end (--shards / --engine-threads); the
    // trace's LPN space then stripes across the shards.
    if (o.shards > 0)
        p.shards = o.shards;
    p.engineThreads = o.engineThreads;
    p.traceName = trace;
    p.bufferMode = BufferMode::Real;
    // Open-loop replay at a moderate arrival rate: the device is not
    // saturated, so the tail is shaped by GC interference, exactly as
    // in the paper's timestamped trace runs.
    p.traceIops = 40000.0;
    // Sustained GC pressure over the whole window (the paper assumes
    // GC is triggered throughout); the scheduling policy still gates
    // individual copies, so PreemptiveGC postpones into I/O gaps and
    // TinyTail slices.
    p.gcCopiesInFlight = 8; // bursty PaGC-style collection
    p.window = 25 * tickMs;
    p.seed = seed;
    ExpResult r = runExperiment(p);
    return r.p99LatencyUs;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOpts o = BenchOpts::parse(argc, argv);

    banner("Fig 11(a)", "prn_0 99% tail latency per scheme");
    std::printf("%-14s  %12s  %14s\n", "scheme", "p99(us)",
                "dSSD_f speedup");
    double p99[std::size(kSchemes)];
    int i = 0;
    for (const Scheme &s : kSchemes)
        p99[i++] = runTrace("prn_0", s, o);
    double dssdf = p99[std::size(kSchemes) - 1];
    i = 0;
    for (const Scheme &s : kSchemes) {
        std::printf("%-14s  %12.1f  %13.2fx\n", s.label, p99[i],
                    p99[i] / dssdf);
        ++i;
    }

    rule();
    banner("Fig 11(b)",
           "average p99 tail-latency reduction of dSSD_f across traces");
    const char *traces[] = {"prn_0", "src1_2", "usr_2", "hm_1",
                            "proj_0", "mds_0", "web_0", "rsrch_0"};
    double gain[std::size(kSchemes) - 1] = {};
    for (const char *t : traces) {
        double d = runTrace(t, kSchemes[std::size(kSchemes) - 1], o);
        for (std::size_t s = 0; s + 1 < std::size(kSchemes); ++s)
            gain[s] += runTrace(t, kSchemes[s], o) / d;
    }
    std::printf("%-14s  %22s\n", "vs scheme",
                "avg p99 reduction (x)");
    for (std::size_t s = 0; s + 1 < std::size(kSchemes); ++s) {
        std::printf("%-14s  %21.2fx\n", kSchemes[s].label,
                    gain[s] / std::size(traces));
    }
    return 0;
}
