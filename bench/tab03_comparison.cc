/**
 * @file
 * Table 3: quantitative proxy for the paper's qualitative comparison —
 * average I/O performance, tail latency, GC performance, and bus
 * interference per scheme (PreemptiveGC, TinyTail, PaGC, dSSD).
 */

#include <cstdio>

#include "bench/harness.hh"

using namespace dssd;
using namespace dssd::bench;

int
main(int argc, char **argv)
{
    BenchOpts o = BenchOpts::parse(argc, argv);
    banner("Table 3",
           "scheme comparison under write pressure with GC "
           "(higher IO/GC better, lower p99/interference better)");
    struct Scheme
    {
        const char *label;
        ArchKind arch;
        GcPolicy pol;
    };
    const Scheme schemes[] = {
        {"PreemptiveGC", ArchKind::Baseline, GcPolicy::Preemptive},
        {"TinyTail", ArchKind::Baseline, GcPolicy::TinyTail},
        {"PaGC", ArchKind::Baseline, GcPolicy::Parallel},
        {"dSSD (ours)", ArchKind::DSSDNoc, GcPolicy::Parallel},
    };
    std::printf("%-14s  %10s  %10s  %12s  %14s\n", "scheme",
                "IO(GB/s)", "p99(us)", "GC(pages/s)",
                "bus-GC util(%)");
    for (const Scheme &s : schemes) {
        ExpParams p;
        p.arch = s.arch;
        p.gcPolicy = s.pol;
        p.channels = 8;
        p.ways = 4;
        p.planes = 8;
        p.requestBytes = 16 * kKiB;
        p.bufferMode = BufferMode::AlwaysMiss;
        p.window = 30 * tickMs;
        p.seed = o.seed;
        ExpResult r = runExperiment(p);
        std::printf("%-14s  %10.3f  %10.1f  %12.0f  %14.1f\n", s.label,
                    r.ioBytesPerSec / 1e9, r.p99LatencyUs,
                    r.gcPagesPerSec, 100 * r.busGcUtil);
    }
    std::printf("\nFTL modification: Preemptive/TinyTail/PaGC require "
                "FTL changes; dSSD needs only copyback awareness.\n");
    return 0;
}
