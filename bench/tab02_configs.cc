/**
 * @file
 * Table 2: the five architecture configurations and their bandwidth
 * provisioning (equal total on-chip bandwidth for all non-baselines).
 */

#include <cstdio>

#include "bench/harness.hh"

using namespace dssd;
using namespace dssd::bench;

int
main(int argc, char **argv)
{
    BenchOpts o = BenchOpts::parse(argc, argv);
    (void)o;
    banner("Table 2", "architecture configurations compared");
    std::printf("%-10s  %10s  %12s  %10s  %s\n", "name", "sys-bus",
                "interconnect", "total", "description");
    struct Row
    {
        ArchKind arch;
        const char *desc;
    };
    const Row rows[] = {
        {ArchKind::Baseline, "conventional SSD with parallel GC"},
        {ArchKind::BW, "baseline + extra system-bus bandwidth"},
        {ArchKind::DSSD, "decoupled SSD, copyback over system bus"},
        {ArchKind::DSSDBus, "dSSD + dedicated flash-controller bus"},
        {ArchKind::DSSDNoc, "dSSD + fNoC (1-D mesh)"},
    };
    for (const Row &r : rows) {
        SsdConfig c = makeConfig(r.arch);
        double sb = toGbPerSec(c.effectiveSystemBusBandwidth());
        double ic = isDecoupled(r.arch) &&
                            r.arch != ArchKind::DSSD
                        ? toGbPerSec(c.interconnectBandwidth())
                        : 0.0;
        std::printf("%-10s  %8.2fGB/s  %10.2fGB/s  %8.2fGB/s  %s\n",
                    archName(r.arch), sb, ic, sb + ic, r.desc);
    }
    return 0;
}
