/**
 * @file
 * Fig 12: GC performance as the fNoC router-channel bandwidth is
 * varied (expressed as a ratio to the 1 GB/s flash-channel bandwidth),
 * for (a) different channel counts and (b) different ways per channel.
 */

#include <cstdio>

#include "bench/harness.hh"

using namespace dssd;
using namespace dssd::bench;

namespace
{

double
gcPerf(unsigned channels, unsigned ways, double ratio,
       std::uint64_t seed)
{
    ExpParams p;
    p.arch = ArchKind::DSSDNoc;
    p.channels = channels;
    p.ways = ways;
    p.planes = 4;
    p.blocksPerPlane = 16;
    p.pagesPerBlock = 16;
    p.queueDepth = 0; // pure GC traffic, as in the Fig 12 study
    p.nocLinkGb = ratio * 1.0;
    p.window = 40 * tickMs;
    p.gcVictims = 4;
    p.seed = seed;
    ExpResult r = runExperiment(p);
    return r.gcPagesPerSec;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOpts o = BenchOpts::parse(argc, argv);
    const double ratios[] = {0.25, 0.5, 1.0, 2.0, 4.0};

    banner("Fig 12(a)",
           "GC performance vs router-channel bandwidth, by #channels");
    std::printf("%-10s", "ratio");
    for (unsigned ch : {4u, 8u, 16u})
        std::printf("  %8uch", ch);
    std::printf("   (GC pages/s)\n");
    for (double ratio : ratios) {
        std::printf("x%-9.2f", ratio);
        for (unsigned ch : {4u, 8u, 16u})
            std::printf("  %10.0f", gcPerf(ch, 1, ratio, o.seed));
        std::printf("\n");
    }

    rule();
    banner("Fig 12(b)",
           "GC performance vs router-channel bandwidth, by ways "
           "(8 channels)");
    std::printf("%-10s", "ratio");
    for (unsigned w : {1u, 2u, 4u, 8u})
        std::printf("  %7uway", w);
    std::printf("   (GC pages/s)\n");
    for (double ratio : ratios) {
        std::printf("x%-9.2f", ratio);
        for (unsigned w : {1u, 2u, 4u, 8u})
            std::printf("  %10.0f", gcPerf(8, w, ratio, o.seed));
        std::printf("\n");
    }
    std::printf("\nExpected shape: saturation near x2 for 8 channels "
                "(bisection = N/2 x flash-channel bandwidth).\n");
    return 0;
}
