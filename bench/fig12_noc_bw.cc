/**
 * @file
 * Fig 12: GC performance as the fNoC router-channel bandwidth is
 * varied (expressed as a ratio to the 1 GB/s flash-channel bandwidth),
 * for (a) different channel counts and (b) different ways per channel.
 *
 * Both grids are batched through the parallel sweep runner; printing
 * happens afterwards in sweep order, so the tables are identical for
 * any --threads value.
 */

#include <cstdio>
#include <vector>

#include "bench/harness.hh"
#include "sim/log.hh"

using namespace dssd;
using namespace dssd::bench;

namespace
{

ExpParams
gcParams(unsigned channels, unsigned ways, double ratio,
         std::uint64_t seed)
{
    ExpParams p;
    p.arch = ArchKind::DSSDNoc;
    p.channels = channels;
    p.ways = ways;
    p.planes = 4;
    p.blocksPerPlane = 16;
    p.pagesPerBlock = 16;
    p.queueDepth = 0; // pure GC traffic, as in the Fig 12 study
    p.nocLinkGb = ratio * 1.0;
    p.window = 40 * tickMs;
    p.gcVictims = 4;
    p.seed = seed;
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOpts o = BenchOpts::parse(argc, argv);
    const double ratios[] = {0.25, 0.5, 1.0, 2.0, 4.0};
    const unsigned chans[] = {4u, 8u, 16u};
    const unsigned ways[] = {1u, 2u, 4u, 8u};

    // One batch covers both sub-figures.
    std::vector<ExpParams> ps;
    for (double ratio : ratios)
        for (unsigned ch : chans)
            ps.push_back(gcParams(ch, 1, ratio, o.seed));
    std::size_t part_b = ps.size();
    for (double ratio : ratios)
        for (unsigned w : ways)
            ps.push_back(gcParams(8, w, ratio, o.seed));
    std::vector<ExpResult> rs = runExperiments(ps, o.resolvedThreads());

    JsonSeriesWriter json;
    banner("Fig 12(a)",
           "GC performance vs router-channel bandwidth, by #channels");
    std::printf("%-10s", "ratio");
    for (unsigned ch : chans)
        std::printf("  %8uch", ch);
    std::printf("   (GC pages/s)\n");
    std::size_t idx = 0;
    for (double ratio : ratios) {
        std::printf("x%-9.2f", ratio);
        for (unsigned ch : chans) {
            double v = rs[idx++].gcPagesPerSec;
            std::printf("  %10.0f", v);
            json.add(strformat("a/%uch", ch), v);
        }
        std::printf("\n");
    }

    rule();
    banner("Fig 12(b)",
           "GC performance vs router-channel bandwidth, by ways "
           "(8 channels)");
    std::printf("%-10s", "ratio");
    for (unsigned w : ways)
        std::printf("  %7uway", w);
    std::printf("   (GC pages/s)\n");
    idx = part_b;
    for (double ratio : ratios) {
        std::printf("x%-9.2f", ratio);
        for (unsigned w : ways) {
            double v = rs[idx++].gcPagesPerSec;
            std::printf("  %10.0f", v);
            json.add(strformat("b/%uway", w), v);
        }
        std::printf("\n");
    }
    std::printf("\nExpected shape: saturation near x2 for 8 channels "
                "(bisection = N/2 x flash-channel bandwidth).\n");
    json.writeIfRequested(o, "fig12_noc_bw");
    return 0;
}
