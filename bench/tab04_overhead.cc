/**
 * @file
 * Sec 6.5: area-overhead accounting of the dSSD additions (integrated
 * ECC, fNoC routers, dBUFs, SRT/RBT tables).
 */

#include <cstdio>

#include "bench/harness.hh"
#include "overhead/area.hh"

using namespace dssd;
using namespace dssd::bench;

int
main(int argc, char **argv)
{
    BenchOpts o = BenchOpts::parse(argc, argv);
    (void)o;
    banner("Sec 6.5", "dSSD hardware overhead");

    AreaParams p;
    AreaReport r = computeArea(p);
    std::printf("SSD controller reference area: %.0f mm^2 (8 channels)\n\n",
                p.controllerAreaMm2);
    std::printf("%-24s  %10s  %10s\n", "component", "area(mm^2)",
                "overhead");
    std::printf("%-24s  %10.3f  %9.2f%%\n", "ECC engines (8x LDPC)",
                r.eccAreaMm2, r.eccPct);
    std::printf("%-24s  %10.3f  %9.2f%%\n", "fNoC routers (8x)",
                r.routerAreaMm2, r.routerPct);
    std::printf("%-24s  %10.3f  %9.2f%%\n", "dBUFs (8x 2x32KB)",
                r.dbufAreaMm2, r.dbufPct);
    std::printf("%-24s  %10s  %9.2f%%\n", "total", "", r.totalPct);

    std::printf("\nper-controller tables:\n");
    std::printf("  SRT (%zu entries x %u bits): %.0f B\n", p.srtEntries,
                p.srtEntryBits, r.srtBytesPerController);
    std::printf("  RBT (no reservation):        %.0f B\n",
                r.rbtBytesPerController);
    AreaParams pr = p;
    pr.reservedFraction = 0.07;
    pr.blocksPerChannel = 2768;
    AreaReport rr = computeArea(pr);
    std::printf("  RBT (RESERV 7%%):             %.0f B (~1 KB/channel)\n",
                rr.rbtBytesPerController);
    return 0;
}
