/**
 * @file
 * Fig 9: latency breakdown for (a) I/O requests and (b) copyback as
 * the number of planes grows, Baseline vs dSSD_f. Components: flash
 * memory (array), flash bus, system bus, DRAM, ECC, fNoC.
 */

#include <cstdio>

#include "bench/harness.hh"

using namespace dssd;
using namespace dssd::bench;

namespace
{

void
printRow(const char *config, unsigned planes, const LatencyBreakdown &bd)
{
    std::printf("%-8s  %6u  %9.1f  %9.1f  %9.1f  %8.1f  %7.1f  %7.1f\n",
                config, planes, ticksToUs(bd.flashMem),
                ticksToUs(bd.flashBus), ticksToUs(bd.systemBus),
                ticksToUs(bd.dram), ticksToUs(bd.ecc),
                ticksToUs(bd.noc));
}

void
header()
{
    std::printf("%-8s  %6s  %9s  %9s  %9s  %8s  %7s  %7s\n", "config",
                "planes", "flash(us)", "fbus(us)", "sbus(us)",
                "dram(us)", "ecc(us)", "noc(us)");
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOpts o = BenchOpts::parse(argc, argv);
    banner("Fig 9", "latency breakdown vs number of planes");

    std::printf("\n(a) I/O request latency breakdown\n");
    header();
    for (unsigned planes : {1u, 2u, 4u, 8u}) {
        for (ArchKind k : {ArchKind::Baseline, ArchKind::DSSDNoc}) {
            ExpParams p;
            p.arch = k;
            p.channels = 8;
            p.ways = 4;
            p.planes = planes;
            p.blocksPerPlane = 16;
            p.pagesPerBlock = 16;
            p.requestBytes = 4 * kKiB * planes;
            p.bufferMode = BufferMode::AlwaysMiss;
            p.window = 20 * tickMs;
            p.seed = o.seed;
            if (planes == 8 && k == ArchKind::DSSDNoc) {
                // Fig 9 *is* the span instrumentation summed per
                // component; attach the trace to the densest point so
                // the breakdown bars can be eyeballed against the
                // per-request spans in Perfetto.
                p.tracePath = o.trace;
                p.statsPath = o.stats;
            }
            ExpResult r = runExperiment(p);
            printRow(archName(k), planes, r.ioBreakdown);
        }
    }

    std::printf("\n(b) copyback latency breakdown\n");
    header();
    for (unsigned planes : {1u, 2u, 4u, 8u}) {
        for (ArchKind k : {ArchKind::Baseline, ArchKind::DSSDNoc}) {
            ExpParams p;
            p.arch = k;
            p.channels = 8;
            p.ways = 4;
            p.planes = planes;
            p.blocksPerPlane = 16;
            p.pagesPerBlock = 16;
            p.requestBytes = 4 * kKiB * planes;
            p.bufferMode = BufferMode::AlwaysMiss;
            p.window = 20 * tickMs;
            p.seed = o.seed;
            ExpResult r = runExperiment(p);
            printRow(archName(k), planes, r.cbBreakdown);
        }
    }
    return 0;
}
