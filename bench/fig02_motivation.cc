/**
 * @file
 * Fig 2: I/O bandwidth over time and system-bus utilization for the
 * low-bandwidth (4 KB, 1 of 8 planes) and high-bandwidth (32 KB, all
 * planes via multi-plane access) sequential-write scenarios on the
 * conventional (Baseline) SSD, with the GC window marked.
 */

#include <cstdio>

#include "bench/harness.hh"

using namespace dssd;
using namespace dssd::bench;

namespace
{

void
scenario(const char *label, std::uint64_t req_bytes, bool full)
{
    ExpParams p;
    p.arch = ArchKind::Baseline;
    p.channels = 8;
    p.ways = 8;
    p.planes = 8;
    p.blocksPerPlane = full ? 96 : 48;
    p.pagesPerBlock = full ? 64 : 16;
    p.requestBytes = req_bytes;
    p.sequential = true;
    p.readRatio = 0.0;
    p.bufferMode = BufferMode::AlwaysMiss;
    // Leave free-block headroom so threshold GC stays quiet; the
    // forced round at gcDelay creates the Fig 2 dip.
    p.prefillFill = 0.5;
    p.prefillInvalid = 0.3;
    p.window = 30 * tickMs;
    p.gcDelay = 10 * tickMs;
    p.continuousGc = false;
    p.gcVictims = 2;

    ExpResult r = runExperiment(p);

    std::printf("\n[%s] %llu KB sequential writes, QD 64\n", label,
                static_cast<unsigned long long>(req_bytes / kKiB));
    std::printf("GC active: %.1f ms .. %.1f ms\n",
                ticksToMs(r.gcStart), ticksToMs(r.gcEnd));
    std::printf("%6s  %12s  %10s  %10s\n", "t(ms)", "IO-BW(GB/s)",
                "bus-IO(%)", "bus-GC(%)");
    std::size_t n = r.ioBwSeries.size();
    for (std::size_t i = 0; i < n; ++i) {
        double io = i < r.busIoSeries.size() ? r.busIoSeries[i] : 0.0;
        double gc = i < r.busGcSeries.size() ? r.busGcSeries[i] : 0.0;
        std::printf("%6zu  %12.3f  %10.1f  %10.1f\n", i,
                    r.ioBwSeries[i], 100 * io, 100 * gc);
    }
    std::printf("average I/O bandwidth: %.3f GB/s\n",
                r.ioBytesPerSec / 1e9);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOpts o = BenchOpts::parse(argc, argv);
    banner("Fig 2",
           "GC interference on I/O bandwidth and system-bus utilization "
           "(Baseline SSD, ULL flash)");
    scenario("low-bandwidth", 4 * kKiB, o.full);
    rule();
    scenario("high-bandwidth", 32 * kKiB, o.full);
    return 0;
}
