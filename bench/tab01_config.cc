/**
 * @file
 * Table 1: prints the simulation parameters actually instantiated by
 * the default configuration so they can be checked against the paper.
 */

#include <cstdio>

#include "bench/harness.hh"

using namespace dssd;
using namespace dssd::bench;

int
main(int argc, char **argv)
{
    BenchOpts o = BenchOpts::parse(argc, argv);
    (void)o;
    banner("Table 1", "simulation parameters");

    SsdConfig c = makeConfig(ArchKind::DSSDNoc, false);
    std::printf("system-bus        : %s\n",
                formatBandwidth(
                    toGbPerSec(c.effectiveSystemBusBandwidth()) * 1e9)
                    .c_str());
    std::printf("DRAM              : %s\n",
                formatBandwidth(toGbPerSec(c.dramBandwidth) * 1e9)
                    .c_str());
    std::printf("flash bus         : %s\n",
                formatBandwidth(toGbPerSec(c.channel.busBandwidth) * 1e9)
                    .c_str());
    std::printf("geometry          : %u channels x %u ways x %u dies x "
                "%u planes\n",
                c.geom.channels, c.geom.ways, c.geom.diesPerWay,
                c.geom.planesPerDie);
    std::printf("blocks x pages    : %u x %u (%llu KB pages)\n",
                c.geom.blocksPerPlane, c.geom.pagesPerBlock,
                static_cast<unsigned long long>(c.geom.pageBytes / kKiB));
    std::printf("capacity          : %.1f GiB raw\n",
                static_cast<double>(c.geom.capacityBytes()) / kGiB);
    std::printf("over-provision    : %.0f%%\n", 100 * c.overProvision);

    NandTiming ull = ullTiming();
    std::printf("flash (ULL)       : read %.0f us, write %.0f us, "
                "erase %.0f ms\n",
                ticksToUs(ull.readMin), ticksToUs(ull.programMin),
                ticksToMs(ull.erase));
    NandTiming tlc = tlcTiming();
    std::printf("memory (TLC)      : read %.0f-%.0f us, write "
                "%.0f-%.0f us, erase %.0f ms\n",
                ticksToUs(tlc.readMin), ticksToUs(tlc.readMax),
                ticksToUs(tlc.programMin), ticksToUs(tlc.programMax),
                ticksToMs(tlc.erase));
    std::printf("wear model        : gaussian E=5578, sigma=826.9, "
                "7%% provision\n");
    std::printf("fNoC              : topology=%s, k=%u, n=1, "
                "routing=dim-order\n",
                c.nocTopology.c_str(), c.geom.channels);
    return 0;
}
