/**
 * @file
 * google-benchmark micro-benchmarks for the simulator's hot paths:
 * the event queue, the bandwidth-resource reservation, NoC packet
 * routing, FTL allocation/GC bookkeeping, and the endurance fast path.
 */

#include <benchmark/benchmark.h>

#include "core/gc.hh"
#include "core/ssd.hh"
#include "noc/network.hh"
#include "reliability/endurance.hh"

namespace dssd
{
namespace
{

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        Engine e;
        int sink = 0;
        for (int i = 0; i < 1000; ++i)
            e.schedule(static_cast<Tick>(i * 7 % 97), [&] { ++sink; });
        e.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_BandwidthReserve(benchmark::State &state)
{
    Engine e;
    BandwidthResource bus(e, "bus", 8.0);
    for (auto _ : state)
        benchmark::DoNotOptimize(bus.reserve(4096, tagIo));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BandwidthReserve);

void
BM_NocPacket(benchmark::State &state)
{
    for (auto _ : state) {
        Engine e;
        NocParams np;
        np.linkBandwidth = 2.0;
        NocNetwork net(e, std::make_unique<Mesh1D>(8), np);
        unsigned done = 0;
        for (unsigned i = 0; i < 256; ++i)
            net.send(i % 8, (i * 3 + 1) % 8, 4096, tagGc,
                     [&] { ++done; });
        e.run();
        benchmark::DoNotOptimize(done);
    }
    state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_NocPacket);

void
BM_FtlAllocate(benchmark::State &state)
{
    MappingParams p;
    p.geom.channels = 8;
    p.geom.ways = 4;
    p.geom.planesPerDie = 2;
    p.geom.blocksPerPlane = 64;
    p.geom.pagesPerBlock = 64;
    p.overProvision = 0.5;
    PageMapping m(p);
    Lpn l = 0;
    Lpn range = m.lpnCount() / 4;
    for (auto _ : state) {
        m.allocate(l % range);
        ++l;
        if (l % 512 == 0) {
            // Keep space available with inline GC.
            for (std::uint32_t u = 0; u < m.unitCount(); ++u) {
                while (m.gcNeeded(u)) {
                    auto v = m.pickVictim(u);
                    if (!v)
                        break;
                    for (Lpn lp : m.validLpns(u, *v)) {
                        PhysAddr dst = m.allocateInUnit(lp, u);
                        m.commitRelocation(lp, dst);
                    }
                    if (m.validLpns(u, *v).empty())
                        m.eraseBlock(u, *v);
                    else
                        break;
                }
            }
        }
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FtlAllocate);

/**
 * Victim selection cost per pick. Arg selects the policy (0 greedy,
 * 1 costbenefit, 2 windowed). Greedy reads the bucketed valid-count
 * index — O(buckets) instead of the old O(blocks) scan — so this is
 * the regression gate for the index refactor.
 */
void
BM_PickVictim(benchmark::State &state)
{
    static const char *const kPolicies[] = {"greedy", "costbenefit",
                                            "windowed"};
    MappingParams p;
    p.geom.channels = 8;
    p.geom.ways = 4;
    p.geom.planesPerDie = 2;
    p.geom.blocksPerPlane = 64;
    p.geom.pagesPerBlock = 64;
    p.overProvision = 0.5;
    p.victimPolicy = kPolicies[state.range(0)];
    PageMapping m(p);
    // Half the logical space live, rewritten once with stride 3: every
    // block ends up partially valid, so every bucket is populated.
    Lpn range = m.lpnCount() / 2;
    for (Lpn l = 0; l < range; ++l)
        m.allocate(l);
    for (Lpn l = 0; l < range; l += 3)
        m.allocate(l);
    std::uint32_t unit = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(m.pickVictim(unit));
        unit = (unit + 1) % m.unitCount();
    }
    state.SetItemsProcessed(state.iterations());
    state.SetLabel(p.victimPolicy);
}
BENCHMARK(BM_PickVictim)->Arg(0)->Arg(1)->Arg(2);

void
BM_SsdWritePage(benchmark::State &state)
{
    Engine e;
    SsdConfig c = makeConfig(ArchKind::DSSDNoc);
    c.geom.blocksPerPlane = 32;
    c.geom.pagesPerBlock = 32;
    c.writeBuffer.capacityPages = 1u << 20; // never flush
    auto ssd = std::make_unique<Ssd>(e, c);
    Lpn l = 0;
    for (auto _ : state) {
        ssd->writePage(l++ % ssd->mapping().lpnCount(), [] {});
        if (l % 256 == 0)
            e.run();
    }
    e.run();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SsdWritePage);

void
BM_EnduranceSim(benchmark::State &state)
{
    for (auto _ : state) {
        EnduranceParams p;
        p.superblocks = 256;
        p.wear.peMean = 200;
        p.wear.peSigma = 30;
        p.scheme = SuperblockScheme::Recycled;
        EnduranceResult r = EnduranceSim(p).run();
        benchmark::DoNotOptimize(r.badSuperblocks);
    }
}
BENCHMARK(BM_EnduranceSim);

void
BM_GlobalCopyback(benchmark::State &state)
{
    for (auto _ : state) {
        Engine e;
        SsdConfig c = makeConfig(ArchKind::DSSDNoc);
        c.geom.blocksPerPlane = 16;
        c.geom.pagesPerBlock = 16;
        Ssd ssd(e, c);
        ssd.prefill(0.5, 0.0);
        unsigned done = 0;
        for (unsigned i = 0; i < 64; ++i) {
            Lpn l = i;
            auto ppn = ssd.mapping().translate(l);
            if (!ppn)
                continue;
            PhysAddr src = ssd.mapping().geometry().pageAddr(*ppn);
            std::uint32_t dst_unit =
                (ssd.mapping().unitOf(src) + 17) %
                ssd.mapping().unitCount();
            PhysAddr dst = ssd.mapping().allocateInUnit(l, dst_unit);
            ssd.gcCopyPage(src, dst, [&, l, dst] {
                ssd.mapping().commitRelocation(l, dst);
                ++done;
            });
        }
        e.run();
        benchmark::DoNotOptimize(done);
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_GlobalCopyback);

} // namespace
} // namespace dssd
