#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON file produced by --trace.

Checks that the document parses, that every event carries the fields
its phase requires, that async begin/end events pair up, and that the
expected track families (die ops, bus transfers, NoC packets, copyback
stages) are present. CI runs this over the bench_fig07_main trace;
it is also handy locally:

    python3 tools/trace_check.py trace.json
    python3 tools/trace_check.py --require-tracks trace.json
"""

import argparse
import json
import sys

# Track families the fig07 DSSDNoc run must populate (process names).
EXPECTED_PROCESSES = ["nand", "bus", "noc", "copyback", "gc", "host"]
# Event categories that must appear alongside them.
EXPECTED_CATEGORIES = ["die", "bus", "packet", "cbstage", "io"]
# Span names the fault-injection subsystem may emit on its "fault"
# track: recovery-ladder steps, NoC retransmits, and the copyback
# abort/front-end-fallback pair. Anything else on that track is a bug.
FAULT_SPAN_NAMES = {"retry", "soft", "abort", "retransmit", "fallback"}

REQUIRED_FIELDS = {
    "X": ("pid", "tid", "name", "ts", "dur"),
    "b": ("pid", "name", "cat", "id", "ts"),
    "e": ("pid", "name", "cat", "id", "ts"),
    "C": ("pid", "name", "ts", "args"),
    "M": ("pid", "name", "args"),
}


def fail(msg):
    print(f"trace_check: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="trace_event JSON file")
    ap.add_argument(
        "--require-tracks",
        action="store_true",
        help="also require the fig07 track families "
        f"({', '.join(EXPECTED_PROCESSES)})",
    )
    ap.add_argument(
        "--require-fault-tracks",
        action="store_true",
        help="also require the fault-injection track family "
        "(a 'fault' process with retry/fallback spans)",
    )
    args = ap.parse_args()

    with open(args.trace) as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"not valid JSON: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("missing traceEvents array")
    if not events:
        fail("empty traceEvents array")

    processes = {}  # pid -> name
    categories = set()
    open_spans = {}  # (pid, cat, id, name) -> begin count
    counts = {}

    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph not in REQUIRED_FIELDS:
            fail(f"event {i}: unknown phase {ph!r}")
        counts[ph] = counts.get(ph, 0) + 1
        for field in REQUIRED_FIELDS[ph]:
            if field not in ev:
                fail(f"event {i} (ph={ph}): missing field {field!r}")
        if "ts" in ev and ev["ts"] < 0:
            fail(f"event {i}: negative timestamp {ev['ts']}")
        if ph == "X" and ev["dur"] < 0:
            fail(f"event {i}: negative duration {ev['dur']}")
        if ph == "M" and ev["name"] == "process_name":
            processes[ev["pid"]] = ev["args"]["name"]
        if "cat" in ev:
            categories.add(ev["cat"])
        if ph in ("b", "e"):
            key = (ev["pid"], ev["cat"], ev["id"], ev["name"])
            open_spans[key] = open_spans.get(key, 0) + (
                1 if ph == "b" else -1
            )
        if ev.get("cat") == "fault" and ph in ("b", "e"):
            if ev["name"] not in FAULT_SPAN_NAMES:
                fail(
                    f"event {i}: unknown fault span {ev['name']!r} "
                    f"(expected one of {sorted(FAULT_SPAN_NAMES)})"
                )

    unbalanced = {k: v for k, v in open_spans.items() if v != 0}
    if unbalanced:
        sample = next(iter(unbalanced))
        fail(
            f"{len(unbalanced)} async span(s) unbalanced, "
            f"e.g. {sample} (begin-end delta {unbalanced[sample]})"
        )

    if args.require_tracks:
        names = set(processes.values())
        missing = [p for p in EXPECTED_PROCESSES if p not in names]
        if missing:
            fail(f"missing process track(s): {', '.join(missing)}")
        missing_cat = [c for c in EXPECTED_CATEGORIES if c not in categories]
        if missing_cat:
            fail(f"missing event category(s): {', '.join(missing_cat)}")

    if args.require_fault_tracks:
        if "fault" not in set(processes.values()):
            fail("missing 'fault' process track")
        if "fault" not in categories:
            fail("missing 'fault' event category")

    summary = ", ".join(f"{ph}:{n}" for ph, n in sorted(counts.items()))
    print(
        f"trace_check: OK: {len(events)} events ({summary}), "
        f"{len(processes)} process tracks "
        f"({', '.join(sorted(set(processes.values())))})"
    )


if __name__ == "__main__":
    main()
