#!/usr/bin/env python3
"""dssd_analyze: AST-grounded whole-program analyzer for the dssd tree.

Where tools/lint/dssd_lint.py works line-by-line with regexes,
dssd_analyze builds a per-translation-unit *fact database* (types,
class fields, lambda captures and the call they are scheduled
through, casts, trace-span sites, alias chains), merges it across the
whole program, and runs pluggable rule passes over the merged facts.
That lets it see through typedefs, associate a lambda with the
mailbox call it crosses a thread boundary on, and check completeness
properties ("every stat member is registered somewhere") that no
single line can witness.

Fact extraction has two interchangeable frontends producing the same
schema (facts carry no frontend-specific shape, so rules never care):

 - clang: drives `clang -fsyntax-only -Xclang -ast-dump=json` per TU
   using the flags recorded in compile_commands.json, then walks the
   JSON AST keeping facts for project files only. Real type
   information: sees through aliases, macro expansions, and implicit
   conversions. Used by CI (which installs clang).
 - text: a bundled lexical extractor (comment/string-stripped token
   scanning with brace/paren matching and alias resolution). No
   toolchain dependency, so it runs anywhere — including containers
   without a clang driver — at the cost of some precision.

Facts are cached per source file/TU under --cache-dir, keyed by the
content hash, the frontend, and the extractor version, so re-runs
only re-parse what changed.

Rule families (see DESIGN.md §13 for the catalog and rationale):

 R7  shard confinement / pointer escape: pooled allocator handles
     (sim/pool.hh PoolPtr/BlockPool, makePooled results) are
     thread-confined to their owning shard; capturing one in a lambda
     that crosses the EngineGroup host<->shard message path
     (postToShard/postToHost) smuggles a non-atomic refcount across
     threads. Also: no global/static pooled state, and shard engines
     (EngineGroup::shardEngine) may only be touched by the array
     front-end and the sim layer.

 R8  registration/pairing completeness: every Counter / SampleStat /
     RateSeries member of a class must be referenced by a
     registerStats method of that class (otherwise the stat silently
     never reaches --stats dumps); every async trace span (cat, name)
     opened by Tracer::asyncBegin must be closed by a matching
     asyncEnd somewhere in the program, and vice versa.

 R9  tick safety: Tick is an unsigned 64-bit nanosecond count.
     Narrowing or sign-flipping casts of tick expressions, and
     declarations that seed a narrower integer from one, truncate
     after ~4.3 s of simulated time (or go negative); both are flagged.
     Unguarded tick subtraction is reported as a warning (advisory).

 R10 AST-backed upgrades of lint R1-R3: unordered-container iteration
     detection through type aliases and cross-TU member types,
     default-capture detection from the parsed capture list, and
     unqualified libc randomness/time pulled in via using-directives.

Findings are suppressed either by an inline
    // analyze:allow <RULE>  <justification>
comment on the offending line (or the line above), or by an entry in
the allowlist file (--allowlist, default tools/analyze/ALLOWLIST);
every allowlist entry must carry a `#` justification or the run
fails. Exit status: 0 clean, 1 findings, 2 usage/internal error.

Self-test mode (--self-test DIR) analyzes each fixture TU in DIR
standalone and checks its findings against the `// trip:<RULE>`
annotations in the fixture: annotated lines must fire exactly, and
files without annotations must come back clean. The fixtures are the
golden regression suite for the rules themselves (tests/analyze/).
"""

import argparse
import fnmatch
import hashlib
import json
import os
import re
import shlex
import subprocess
import sys
from pathlib import Path

EXTRACTOR_VERSION = 7  # bump to invalidate cached facts

# ---------------------------------------------------------------------------
# Source text helpers (shared with the regex lint's philosophy: never
# match inside strings or comments).
# ---------------------------------------------------------------------------


def strip_comments_and_strings(line):
    line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
    line = re.sub(r"'(?:[^'\\]|\\.)*'", "''", line)
    cut = line.find("//")
    if cut >= 0:
        line = line[:cut]
    return line


def logical_lines(text):
    """Yield (lineno, code, raw) with block comments, // comments and
    string/char literal contents removed from `code`."""
    in_block = False
    for i, raw in enumerate(text.splitlines(), start=1):
        line = raw
        if in_block:
            end = line.find("*/")
            if end < 0:
                yield i, "", raw
                continue
            line = line[end + 2:]
            in_block = False
        line = re.sub(r"/\*.*?\*/", " ", line)
        start = line.find("/*")
        if start >= 0:
            line = line[:start]
            in_block = True
        yield i, strip_comments_and_strings(line), raw


class SourceText:
    """A file's stripped code as one stream with offset->line mapping."""

    def __init__(self, text):
        self.lines = list(logical_lines(text))
        self.raw_lines = [raw for _, _, raw in self.lines]
        parts = []
        self.line_starts = []
        off = 0
        for _, code, _ in self.lines:
            self.line_starts.append(off)
            parts.append(code)
            off += len(code) + 1
        self.code = "\n".join(parts)

    def line_of(self, offset):
        import bisect
        return bisect.bisect_right(self.line_starts, offset)

    def raw_line(self, lineno):
        if 1 <= lineno <= len(self.raw_lines):
            return self.raw_lines[lineno - 1]
        return ""


def match_delim(code, open_pos, open_ch, close_ch):
    """Offset just past the delimiter matching code[open_pos], or -1."""
    depth = 0
    for i in range(open_pos, len(code)):
        c = code[i]
        if c == open_ch:
            depth += 1
        elif c == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def _raw_call_args(raw_text, callee):
    """Top-level argument strings of `callee(...)` in raw (unstripped)
    source text: quote-aware paren matching, then a quote-aware
    top-level comma split. Empty list when parsing fails."""
    at = raw_text.find(callee + "(")
    if at < 0:
        at2 = re.search(re.escape(callee) + r"\s*\(", raw_text)
        if not at2:
            return []
        open_pos = raw_text.find("(", at2.start())
    else:
        open_pos = at + len(callee)
    depth = 0
    in_str = False
    args, cur = [], []
    i = open_pos
    while i < len(raw_text):
        c = raw_text[i]
        if in_str:
            if c == "\\":
                i += 2
                cur.append(raw_text[i - 2:i])
                continue
            cur.append(c)
            if c == '"':
                in_str = False
            i += 1
            continue
        if c == '"':
            in_str = True
            cur.append(c)
        elif c == "(":
            depth += 1
            if depth > 1:
                cur.append(c)
        elif c == ")":
            depth -= 1
            if depth == 0:
                args.append("".join(cur).strip())
                return [a for a in args if a]
            cur.append(c)
        elif c == "," and depth == 1:
            args.append("".join(cur).strip())
            cur = []
        else:
            cur.append(c)
        i += 1
    return []


def split_top_commas(s):
    """Split on commas not nested in (), [], <>, {}."""
    parts, depth_round, depth_square, depth_brace, depth_angle = [], 0, 0, 0, 0
    cur = []
    for c in s:
        if c == "(":
            depth_round += 1
        elif c == ")":
            depth_round -= 1
        elif c == "[":
            depth_square += 1
        elif c == "]":
            depth_square -= 1
        elif c == "{":
            depth_brace += 1
        elif c == "}":
            depth_brace -= 1
        elif c == "<":
            depth_angle += 1
        elif c == ">" and depth_angle > 0:
            depth_angle -= 1
        elif c == "," and not (depth_round or depth_square or
                               depth_brace or depth_angle):
            parts.append("".join(cur))
            cur = []
            continue
        cur.append(c)
    if cur:
        parts.append("".join(cur))
    return [p.strip() for p in parts if p.strip()]


# ---------------------------------------------------------------------------
# Fact schema
#
# One dict per analyzed file:
#   file            repo-relative path the facts belong to
#   aliases         {alias: underlying-type-string}
#   classes         [{name, line, stat_fields: [{name, type, line}],
#                     pool_fields: [{name, type, line}],
#                     unordered_fields: [{name, type, line}],
#                     registered: [member-name, ...] | None}]
#                   (registered is non-None iff a registerStats body
#                    for the class was seen in this file)
#   lambdas         [{line, default: '='|'&'|None, captures: [{name,
#                     ref, init}], sink: call-name|None}]
#   pooled_names    [name, ...]  (locals/params of pooled type)
#   spans           [{kind: 'begin'|'end', cat, name, line}]
#   tick_names      [name, ...]  (Tick-typed variables/params)
#   narrow_casts    [{line, to, expr}]
#   narrow_decls    [{line, to, name, expr}]
#   tick_subs       [{line, a, b, guarded}]
#   unordered_names [{name, via, line}]  (alias-declared unordered vars)
#   iterations      [{name, line}]      (range-for / .begin() walks)
#   shard_engine_uses [{line}]
#   global_pooled   [{name, line}]
#   using_libc      [{name, line}]      (using std::rand / using namespace std)
#   libc_calls      [{name, line}]      (bare rand()/time()/srand() calls)
# ---------------------------------------------------------------------------

POOLED_TYPES = ("PoolPtr", "BlockPool", "PoolAllocator")
STAT_TYPES = ("Counter", "SampleStat", "RateSeries")
SINK_CALLS = ("postToShard", "postToHost", "schedule", "scheduleAbs")
CROSSING_SINKS = ("postToShard", "postToHost")
TICK_CALLS = ("now", "nextEventTick", "firstGcStart", "lastGcEnd",
              "lookahead", "gcFirstStart", "gcLastEnd")

# Integer destinations that can hold a full Tick without truncation or
# sign flip. Everything else integral is a narrowing target.
TICK_SAFE_TARGETS = {
    "Tick", "dssd::Tick", "std::uint64_t", "uint64_t",
    "unsigned long long", "unsigned long long int", "std::size_t",
    "size_t", "std::uintmax_t", "uintmax_t", "unsigned long",
    "double", "long double", "float",  # float loses precision, not range
}
NARROW_TARGET = re.compile(
    r"^(?:const\s+)?(?:signed\s+)?("
    r"std::u?int(?:8|16|32)_t|u?int(?:8|16|32)_t|"
    r"std::int64_t|int64_t|long long|long|int|short|char|unsigned|"
    r"unsigned\s+(?:int|short|char|long)"
    r")$")


def is_narrow_target(t):
    t = re.sub(r"\s+", " ", t.strip())
    t = t.replace("const ", "")
    if t in TICK_SAFE_TARGETS:
        return False
    return bool(NARROW_TARGET.match(t))


def empty_facts(rel):
    return {
        "file": rel, "aliases": {}, "classes": [], "lambdas": [],
        "pooled_names": [], "spans": [], "tick_names": [],
        "narrow_casts": [], "narrow_decls": [], "tick_subs": [],
        "unordered_names": [], "iterations": [], "shard_engine_uses": [],
        "global_pooled": [], "using_libc": [], "libc_calls": [],
    }


# ---------------------------------------------------------------------------
# Text frontend
# ---------------------------------------------------------------------------

ALIAS_RE = re.compile(r"\busing\s+(\w+)\s*=\s*([^;]+);")
TYPEDEF_RE = re.compile(r"\btypedef\s+(.{1,120}?)\s+(\w+)\s*;")
CLASS_RE = re.compile(r"\b(?:class|struct)\s+(\w+)\s*(?:final\s*)?"
                      r"(?::[^;{]*)?{")
FIELD_RE = re.compile(
    r"(?:^|[;{}\n])\s*(?:mutable\s+)?(?:const\s+)?"
    r"((?:\w+::)*\w+(?:\s*<[^;()]*?>)?)\s+(_?\w+)\s*(?:[;{]|=[^=])")
REGSTATS_CC_RE = re.compile(r"\b(\w+)::registerStats\s*\(")
LAMBDA_RE = re.compile(r"\[([^\[\]]*)\]\s*(?:\([^)]*\))?\s*"
                       r"(?:mutable\s*)?(?:noexcept\s*)?(?:->[^{]{0,60})?\{")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(.*?:\s*(?:\*\s*)?([A-Za-z_]\w*)\s*\)")
BEGIN_WALK_RE = re.compile(r"\b([A-Za-z_]\w*)\s*[.]\s*c?begin\s*\(")
# Member-call prefix required so declarations in headers (or fixture
# stubs) don't register as span sites.
SPAN_RE = re.compile(r"(?:\.|->)\s*async(Begin|End)\s*\(")
CAST_RE = re.compile(r"\bstatic_cast\s*<\s*([^<>]+?)\s*>\s*\(")
TICK_DECL_RE = re.compile(r"\bTick\s+(\w+)\s*(?![\w(])")
TICK_SUB_RE = re.compile(r"\b(\w+)\s*-\s*(\w+)\b")
SHARD_ENGINE_RE = re.compile(r"(?:\.|->)\s*shardEngine\s*\(")
USING_LIBC_RE = re.compile(
    r"\busing\s+(?:std::(rand|srand|time|clock)|(namespace\s+std))\s*;")
LIBC_CALL_RE = re.compile(r"(?<![\w:.])(rand|srand|time|clock)\s*\(")
POOLED_LOCAL_RE = re.compile(
    r"\b(?:PoolPtr|PoolAllocator\s*<[^>]*>)\s+(\w+)\b|"
    r"\b(?:auto|const auto)\s*&?\s+(\w+)\s*=\s*"
    r"[^;]*(?:makePooled|PoolPtr::make)\b")
# No '(' terminator: `PoolPtr makePooled();` is a function
# declaration, not pooled state.
GLOBAL_POOLED_RE = re.compile(
    r"^(?:static\s+)?(?:PoolPtr|BlockPool)\s+(\w+)\s*[;={]")

UNORDERED_IN_TYPE = re.compile(r"std::unordered_(?:map|set|multimap|multiset)")


def resolve_alias(name, aliases, depth=0):
    """Chase alias chains: the final underlying type string."""
    seen = name
    while depth < 8 and seen in aliases:
        seen = aliases[seen].strip()
        # "std::unordered_map<K, V>" or another alias name
        head = re.match(r"(\w+)\s*$", seen)
        if head and head.group(1) in aliases and head.group(1) != seen:
            seen = head.group(1)
        depth += 1
    return seen


def _parse_captures(capture_text):
    default = None
    captures = []
    for item in split_top_commas(capture_text):
        if item in ("=", "&"):
            default = item
            continue
        if item == "this" or item == "*this":
            captures.append({"name": "this", "ref": False, "init": False})
            continue
        m = re.match(r"(&?)\s*(\w+)\s*=\s*(.*)$", item, re.S)
        if m:
            captures.append({"name": m.group(2), "ref": bool(m.group(1)),
                             "init": True, "init_expr": m.group(3)})
            continue
        m = re.match(r"(&?)\s*(\w+)$", item)
        if m:
            captures.append({"name": m.group(2), "ref": bool(m.group(1)),
                             "init": False})
    return default, captures


def _class_spans(code):
    """[(name, body_start, body_end)] for every class/struct in code."""
    spans = []
    for m in CLASS_RE.finditer(code):
        open_pos = code.find("{", m.end() - 1)
        if open_pos < 0:
            continue
        end = match_delim(code, open_pos, "{", "}")
        if end < 0:
            continue
        spans.append((m.group(1), open_pos + 1, end - 1))
    return spans


def _mask_nested(code, outer_start, outer_end, spans):
    """Body text of [outer_start, outer_end) with nested class bodies
    blanked, so field scans attribute members to the right class."""
    body = list(code[outer_start:outer_end])
    for _, s, e in spans:
        if s > outer_start and e <= outer_end and \
                not (s == outer_start and e == outer_end):
            for i in range(s - outer_start, e - outer_start):
                if body[i] != "\n":
                    body[i] = " "
    return "".join(body)


def extract_text(rel, text):
    """The bundled lexical frontend: same fact schema as clang's."""
    src = SourceText(text)
    code = src.code
    f = empty_facts(rel)

    for m in ALIAS_RE.finditer(code):
        f["aliases"][m.group(1)] = m.group(2).strip()
    for m in TYPEDEF_RE.finditer(code):
        f["aliases"][m.group(2)] = m.group(1).strip()

    # --- classes: stat/pool/unordered members + inline registerStats
    spans = _class_spans(code)
    for name, body_start, body_end in spans:
        masked = _mask_nested(code, body_start, body_end, spans)
        cls = {"name": name, "line": src.line_of(body_start),
               "stat_fields": [], "pool_fields": [],
               "unordered_fields": [], "registered": None}
        for fm in FIELD_RE.finditer(masked):
            ftype, fname = fm.group(1).strip(), fm.group(2)
            base = ftype.split("<")[0].strip()
            line = src.line_of(body_start + fm.start(1))
            entry = {"name": fname, "type": ftype, "line": line}
            base_last = base.split("::")[-1]
            if base_last in STAT_TYPES:
                cls["stat_fields"].append(entry)
            elif base_last in POOLED_TYPES:
                cls["pool_fields"].append(entry)
            resolved = resolve_alias(base, f["aliases"])
            if UNORDERED_IN_TYPE.search(ftype) or \
                    UNORDERED_IN_TYPE.search(resolved):
                cls["unordered_fields"].append(entry)
        # inline registerStats body inside the class
        rm = re.search(r"\bregisterStats\s*\(", masked)
        if rm:
            open_pos = masked.find("{", rm.end())
            semi_pos = masked.find(";", rm.end())
            if open_pos >= 0 and (semi_pos < 0 or open_pos < semi_pos):
                end = match_delim(masked, open_pos, "{", "}")
                if end > 0:
                    cls["registered"] = sorted(set(
                        re.findall(r"[&.]\s*(_?\w+)\b|\b(_\w+)\b",
                                   masked[open_pos:end]) and
                        [a or b for a, b in re.findall(
                            r"[&.]\s*(_?\w+)\b|\b(_\w+)\b",
                            masked[open_pos:end])]))
        f["classes"].append(cls)

    # --- out-of-line registerStats bodies (ClassName::registerStats)
    for m in REGSTATS_CC_RE.finditer(code):
        open_pos = code.find("{", m.end())
        if open_pos < 0:
            continue
        # Skip declarations (a ';' before the '{' means no body here).
        semi = code.find(";", m.end())
        if 0 <= semi < open_pos:
            continue
        end = match_delim(code, open_pos, "{", "}")
        if end < 0:
            continue
        body = code[open_pos:end]
        mentioned = sorted(set(
            a or b for a, b in
            re.findall(r"[&.]\s*(_?\w+)\b|\b(_\w+)\b", body)))
        f["classes"].append({
            "name": m.group(1), "line": src.line_of(m.start()),
            "stat_fields": [], "pool_fields": [], "unordered_fields": [],
            "registered": mentioned})

    # --- pooled locals/params and file-scope pooled state
    for m in POOLED_LOCAL_RE.finditer(code):
        f["pooled_names"].append(m.group(1) or m.group(2))
    class_ranges = [(s, e) for _, s, e in spans]

    def inside_class(off):
        return any(s <= off < e for s, e in class_ranges)

    for lineno, line_code, _ in src.lines:
        gm = GLOBAL_POOLED_RE.match(line_code.strip())
        if gm:
            off = src.line_starts[lineno - 1]
            if not inside_class(off):
                # Function-local statics share the pattern; a leading
                # indent distinguishes file scope in this codebase.
                if line_code == line_code.lstrip():
                    f["global_pooled"].append(
                        {"name": gm.group(1), "line": lineno})

    # --- lambdas + their scheduling sink
    sink_spans = []
    for m in re.finditer(r"\b(" + "|".join(SINK_CALLS) + r")\s*\(", code):
        end = match_delim(code, m.end() - 1, "(", ")")
        if end > 0:
            sink_spans.append((m.start(), end, m.group(1)))
    for m in LAMBDA_RE.finditer(code):
        prev = code[:m.start()].rstrip()[-1:]
        if prev and prev not in "(,={;&|!<>+-*/%:?":
            continue  # array subscript or attribute, not a lambda
        default, captures = _parse_captures(m.group(1))
        sink = None
        best = None
        for s, e, name in sink_spans:
            if s <= m.start() < e:
                if best is None or s > best[0]:
                    best = (s, e, name)
        if best:
            sink = best[2]
        f["lambdas"].append({
            "line": src.line_of(m.start()), "default": default,
            "captures": captures, "sink": sink})

    # --- async span sites: parse the call's raw text (strings
    # intact) so multi-line calls and dynamic names resolve correctly.
    for m in SPAN_RE.finditer(code):
        end = match_delim(code, m.end() - 1, "(", ")")
        if end < 0:
            continue
        lineno = src.line_of(m.start())
        end_line = src.line_of(end - 1)
        raw_call = "\n".join(src.raw_line(n)
                             for n in range(lineno, end_line + 1))
        args = _raw_call_args(raw_call, "async" + m.group(1))
        # (pid, cat, name, id, when) — cat/name are args 1 and 2.

        def span_arg(i):
            if i >= len(args):
                return "<dyn>"
            lm = re.fullmatch(r'"((?:[^"\\]|\\.)*)"', args[i].strip())
            return lm.group(1) if lm else "<dyn>"
        f["spans"].append({"kind": m.group(1).lower(),
                           "cat": span_arg(1), "name": span_arg(2),
                           "line": lineno})

    # --- tick-typed names and unsafe narrowing
    tick_names = set()
    for m in TICK_DECL_RE.finditer(code):
        tick_names.add(m.group(1))
    f["tick_names"] = sorted(tick_names)

    def is_tickish(expr):
        if re.search(r"\b(" + "|".join(TICK_CALLS) + r")\s*\(", expr):
            return True
        toks = set(re.findall(r"[A-Za-z_]\w*", expr))
        return bool(toks & tick_names)

    for m in CAST_RE.finditer(code):
        target = m.group(1)
        end = match_delim(code, m.end() - 1, "(", ")")
        if end < 0:
            continue
        inner = code[m.end():end - 1]
        if is_narrow_target(target) and is_tickish(inner):
            f["narrow_casts"].append({
                "line": src.line_of(m.start()),
                "to": re.sub(r"\s+", " ", target.strip()),
                "expr": re.sub(r"\s+", " ", inner.strip())[:60]})

    decl_re = re.compile(
        r"\b((?:unsigned\s+)?(?:long\s+long|long|int|short|char)|"
        r"(?:std::)?u?int(?:8|16|32|64)_t|(?:std::)?size_t|Tick|"
        r"double|float)\s+(\w+)\s*=\s*([^;=][^;]*);")
    for m in decl_re.finditer(code):
        target, name, expr = m.group(1), m.group(2), m.group(3)
        if is_narrow_target(target) and is_tickish(expr):
            f["narrow_decls"].append({
                "line": src.line_of(m.start()),
                "to": re.sub(r"\s+", " ", target.strip()),
                "name": name,
                "expr": re.sub(r"\s+", " ", expr.strip())[:60]})

    # --- tick subtraction guard heuristic (advisory)
    for m in TICK_SUB_RE.finditer(code):
        a, b = m.group(1), m.group(2)
        if a in tick_names and b in tick_names:
            guard = re.search(
                r"\b{a}\s*[<>]=?\s*{b}\b|\b{b}\s*[<>]=?\s*{a}\b|"
                r"\bmax\s*\(|\bmin\s*\(".format(a=re.escape(a),
                                                b=re.escape(b)), code)
            f["tick_subs"].append({
                "line": src.line_of(m.start()), "a": a, "b": b,
                "guarded": bool(guard)})

    # --- alias-declared unordered containers + iteration sites
    unordered_vars = {}
    for alias, underlying in f["aliases"].items():
        resolved = resolve_alias(alias, f["aliases"])
        if UNORDERED_IN_TYPE.search(resolved):
            for dm in re.finditer(
                    r"\b" + re.escape(alias) + r"\s*&?\s+(\w+)\s*[;={(]",
                    code):
                unordered_vars[dm.group(1)] = alias
    for cls in f["classes"]:
        for fld in cls["unordered_fields"]:
            unordered_vars.setdefault(fld["name"], cls["name"])
    for name, via in sorted(unordered_vars.items()):
        f["unordered_names"].append({"name": name, "via": via})
    for lineno, line_code, _ in src.lines:
        hits = set(RANGE_FOR_RE.findall(line_code)) | \
            set(BEGIN_WALK_RE.findall(line_code))
        for h in sorted(hits):
            f["iterations"].append({"name": h, "line": lineno})

    # --- shard-engine access sites
    for m in SHARD_ENGINE_RE.finditer(code):
        f["shard_engine_uses"].append({"line": src.line_of(m.start())})

    # --- libc randomness/time via using-decls (R10's R1 upgrade)
    for m in USING_LIBC_RE.finditer(code):
        f["using_libc"].append({
            "name": m.group(1) or "namespace std",
            "line": src.line_of(m.start())})
    if f["using_libc"]:
        for m in LIBC_CALL_RE.finditer(code):
            f["libc_calls"].append({"name": m.group(1),
                                    "line": src.line_of(m.start())})

    return f


# ---------------------------------------------------------------------------
# Clang frontend: walk `clang -Xclang -ast-dump=json` output, keeping
# facts for project files. Type facts use qualType (which preserves
# alias sugar) plus desugaredQualType when present, so alias chains are
# resolved by the compiler rather than our regexes.
# ---------------------------------------------------------------------------


def find_clang():
    for name in ("clang++", "clang", "clang++-18", "clang++-17",
                 "clang++-16", "clang++-15", "clang++-14"):
        from shutil import which
        if which(name):
            return name
    return None


def clang_tu_args(entry):
    """compile_commands entry -> clang args for a syntax-only dump."""
    if "arguments" in entry:
        argv = list(entry["arguments"])
    else:
        argv = shlex.split(entry["command"])
    out = []
    skip = 0
    for a in argv[1:]:
        if skip:
            skip -= 1
            continue
        if a in ("-c", "-o"):
            skip = 1 if a == "-o" else 0
            continue
        if a.startswith("-o"):
            continue
        # gcc-specific or irrelevant-to-parse flags clang may reject
        if a.startswith(("-f", "-W", "-g", "-O", "-march", "-mtune")):
            continue
        out.append(a)
    return out


def run_clang_dump(clang, entry, source):
    args = [clang, "-fsyntax-only", "-w", "-Xclang", "-ast-dump=json"]
    args += clang_tu_args(entry)
    args.append(source)
    proc = subprocess.run(args, cwd=entry.get("directory", "."),
                          capture_output=True, text=True)
    if proc.returncode != 0 and not proc.stdout.strip():
        raise RuntimeError(
            f"clang AST dump failed for {source}:\n{proc.stderr[-2000:]}")
    return json.loads(proc.stdout)


def qual_types(node):
    t = node.get("type", {})
    return t.get("qualType", ""), t.get("desugaredQualType",
                                        t.get("qualType", ""))


class ClangWalker:
    """Stateful pre-order walk tracking the current file, producing
    per-file fact dicts for files under the project root."""

    def __init__(self, root):
        self.root = Path(root).resolve()
        self.facts = {}
        self.current_file = None

    def rel_of(self, path):
        try:
            return str(Path(path).resolve().relative_to(self.root))
        except ValueError:
            return None

    def file_facts(self):
        if self.current_file is None:
            return None
        if self.current_file not in self.facts:
            self.facts[self.current_file] = empty_facts(self.current_file)
        return self.facts[self.current_file]

    def update_loc(self, node):
        loc = node.get("loc", {})
        f = loc.get("file") or loc.get("spellingLoc", {}).get("file") \
            or node.get("range", {}).get("begin", {}).get("file")
        if f:
            self.current_file = self.rel_of(f)

    def line_of(self, node):
        loc = node.get("loc", {})
        return loc.get("line") or loc.get("spellingLoc", {}).get("line") \
            or node.get("range", {}).get("begin", {}).get("line") or 0

    def walk(self, node, ctx=None):
        if not isinstance(node, dict):
            return
        self.update_loc(node)
        kind = node.get("kind", "")
        ff = self.file_facts()
        handler = getattr(self, "on_" + kind, None)
        new_ctx = ctx
        if handler and ff is not None:
            new_ctx = handler(node, ff, ctx) or ctx
        for child in node.get("inner", []) or []:
            self.walk(child, new_ctx)

    # -- declarations ----------------------------------------------

    def on_TypeAliasDecl(self, node, ff, ctx):
        name = node.get("name")
        qt, dq = qual_types(node)
        if name:
            ff["aliases"][name] = dq or qt

    on_TypedefDecl = on_TypeAliasDecl

    def on_CXXRecordDecl(self, node, ff, ctx):
        if not node.get("completeDefinition"):
            return ctx
        name = node.get("name")
        if not name:
            return ctx
        cls = {"name": name, "line": self.line_of(node),
               "stat_fields": [], "pool_fields": [],
               "unordered_fields": [], "registered": None}
        for child in node.get("inner", []) or []:
            if child.get("kind") != "FieldDecl":
                continue
            fname = child.get("name")
            if not fname:
                continue
            qt, dq = qual_types(child)
            base = qt.split("<")[0].split("::")[-1].strip()
            entry = {"name": fname, "type": qt,
                     "line": self.line_of(child)}
            if base in STAT_TYPES:
                cls["stat_fields"].append(entry)
            if base in POOLED_TYPES:
                cls["pool_fields"].append(entry)
            if UNORDERED_IN_TYPE.search(qt) or UNORDERED_IN_TYPE.search(dq):
                cls["unordered_fields"].append(entry)
        ff["classes"].append(cls)
        return {"class": name}

    def on_CXXMethodDecl(self, node, ff, ctx):
        name = node.get("name")
        if name == "registerStats" and node.get("inner"):
            mentioned = set()

            def collect(n):
                if isinstance(n, dict):
                    if n.get("kind") in ("MemberExpr", "DeclRefExpr"):
                        nm = n.get("name") or \
                            n.get("referencedDecl", {}).get("name")
                        if nm:
                            mentioned.add(nm)
                    for c in n.get("inner", []) or []:
                        collect(c)
            collect(node)
            cls_name = (ctx or {}).get("class") or \
                (node.get("parentDeclContextId") and None)
            # Out-of-line definitions carry the class in the qualified
            # name ("dssd::Foo::registerStats" is not present in JSON;
            # fall back to mangledName-ish scanning of the semantic
            # parent is unreliable — record under the lexical class
            # when known, else a wildcard the merge step resolves).
            ff["classes"].append({
                "name": cls_name or "?", "line": self.line_of(node),
                "stat_fields": [], "pool_fields": [],
                "unordered_fields": [],
                "registered": sorted(mentioned)})
        return ctx

    def on_VarDecl(self, node, ff, ctx):
        qt, dq = qual_types(node)
        base = qt.split("<")[0].split("::")[-1].strip()
        name = node.get("name")
        if not name:
            return ctx
        if base in POOLED_TYPES or "makePooled" in json.dumps(
                node.get("inner", [])[:1])[:200]:
            ff["pooled_names"].append(name)
            sc = node.get("storageClass")
            if sc == "static" or (ctx or {}).get("file_scope"):
                ff["global_pooled"].append(
                    {"name": name, "line": self.line_of(node)})
        if qt == "Tick" or dq == "unsigned long" or \
                qt.endswith("Tick"):
            if qt.endswith("Tick"):
                ff["tick_names"].append(name)
        if UNORDERED_IN_TYPE.search(dq):
            ff["unordered_names"].append({"name": name, "via": qt})
        # narrowing declaration with a tick-sugared initializer
        if is_narrow_target(qt):
            init = (node.get("inner") or [{}])[0]
            if self._expr_is_tick(init):
                ff["narrow_decls"].append({
                    "line": self.line_of(node), "to": qt,
                    "name": name, "expr": "<init>"})
        return ctx

    on_ParmVarDecl = on_VarDecl

    def _expr_is_tick(self, node):
        if not isinstance(node, dict):
            return False
        qt, _ = qual_types(node)
        if qt.endswith("Tick"):
            return True
        return any(self._expr_is_tick(c)
                   for c in node.get("inner", []) or [])

    # -- expressions -----------------------------------------------

    def on_LambdaExpr(self, node, ff, ctx):
        line = self.line_of(node)
        captures = []
        closure = None
        for child in node.get("inner", []) or []:
            if child.get("kind") == "CXXRecordDecl":
                closure = child
                continue
            if child.get("kind") == "DeclRefExpr":
                rd = child.get("referencedDecl", {})
                nm = rd.get("name")
                if nm:
                    captures.append({
                        "name": nm, "ref": False, "init": False,
                        "type": rd.get("type", {}).get("qualType", "")})

        def mark_pooled(caps):
            for c in caps:
                t = c.get("type", "")
                base = t.split("<")[0].split("::")[-1].strip()
                if base in POOLED_TYPES:
                    ff["pooled_names"].append(c["name"])
        mark_pooled(captures)
        ff["lambdas"].append({
            "line": line, "default": None, "captures": captures,
            "sink": (ctx or {}).get("sink")})
        return ctx

    def on_CXXMemberCallExpr(self, node, ff, ctx):
        callee = ""
        inner = node.get("inner", []) or []
        if inner:
            me = inner[0]
            callee = me.get("name", "") or \
                me.get("referencedDecl", {}).get("name", "")
            if not callee:
                # MemberExpr spells the member in "name" on most
                # versions; fall back to the printed member token.
                callee = me.get("member", {}).get("name", "") \
                    if isinstance(me.get("member"), dict) else ""
        line = self.line_of(node)
        if callee in ("asyncBegin", "asyncEnd"):
            lits = []

            def strings(n):
                if isinstance(n, dict):
                    if n.get("kind") == "StringLiteral":
                        lits.append(n.get("value", "").strip('"'))
                    for c in n.get("inner", []) or []:
                        strings(c)
            strings(node)
            cat = lits[0] if len(lits) >= 1 else "<dyn>"
            name = lits[1] if len(lits) >= 2 else "<dyn>"
            ff["spans"].append({
                "kind": "begin" if callee == "asyncBegin" else "end",
                "cat": cat, "name": name, "line": line})
        if callee == "shardEngine":
            ff["shard_engine_uses"].append({"line": line})
        if callee in SINK_CALLS:
            return {**(ctx or {}), "sink": callee}
        return ctx

    on_CallExpr = on_CXXMemberCallExpr

    def on_StaticCastExpr(self, node, ff, ctx):
        qt, _ = qual_types(node)
        if is_narrow_target(qt):
            if any(self._expr_is_tick(c)
                   for c in node.get("inner", []) or []):
                ff["narrow_casts"].append({
                    "line": self.line_of(node), "to": qt,
                    "expr": "<expr>"})
        return ctx

    on_CXXStaticCastExpr = on_StaticCastExpr
    on_CStyleCastExpr = on_StaticCastExpr
    on_CXXFunctionalCastExpr = on_StaticCastExpr

    def on_CXXForRangeStmt(self, node, ff, ctx):
        for child in node.get("inner", []) or []:
            qt, dq = qual_types(child) if isinstance(child, dict) \
                else ("", "")
            if UNORDERED_IN_TYPE.search(dq or ""):
                nm = None

                def first_ref(n):
                    nonlocal nm
                    if nm is None and isinstance(n, dict):
                        if n.get("kind") in ("DeclRefExpr", "MemberExpr"):
                            nm = n.get("name") or \
                                n.get("referencedDecl", {}).get("name")
                        for c in n.get("inner", []) or []:
                            first_ref(c)
                first_ref(child)
                ff["iterations"].append({
                    "name": nm or "<range>",
                    "line": self.line_of(node)})
        return ctx


def extract_clang_tu(clang, entry, root):
    ast = run_clang_dump(clang, entry, entry["file"])
    walker = ClangWalker(root)
    walker.walk(ast, {"file_scope": True})
    return list(walker.facts.values())


# ---------------------------------------------------------------------------
# Cache
# ---------------------------------------------------------------------------


def cache_key(frontend, payload_bytes):
    h = hashlib.sha256()
    h.update(f"v{EXTRACTOR_VERSION}:{frontend}:".encode())
    h.update(payload_bytes)
    return h.hexdigest()


def cached_extract(cache_dir, frontend, key, producer):
    if cache_dir:
        path = Path(cache_dir) / f"{frontend}-{key}.json"
        if path.exists():
            try:
                return json.loads(path.read_text(encoding="utf-8"))
            except (json.JSONDecodeError, OSError):
                pass
    result = producer()
    if cache_dir:
        Path(cache_dir).mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(result), encoding="utf-8")
        tmp.replace(path)
    return result


# ---------------------------------------------------------------------------
# Program: merged whole-program facts + indexes the rules query.
# ---------------------------------------------------------------------------


class Program:
    def __init__(self, per_file_facts):
        # Merge duplicate file entries (clang mode: a header's facts
        # arrive once per including TU) by (file) keeping the union.
        merged = {}
        for f in per_file_facts:
            cur = merged.setdefault(f["file"], empty_facts(f["file"]))
            cur["aliases"].update(f["aliases"])
            for key in ("classes", "lambdas", "pooled_names", "spans",
                        "tick_names", "narrow_casts", "narrow_decls",
                        "tick_subs", "unordered_names", "iterations",
                        "shard_engine_uses", "global_pooled",
                        "using_libc", "libc_calls"):
                seen = {json.dumps(x, sort_keys=True) for x in cur[key]} \
                    if cur[key] and isinstance(cur[key][0], dict) else \
                    set(cur[key])
                for item in f[key]:
                    token = json.dumps(item, sort_keys=True) \
                        if isinstance(item, dict) else item
                    if token not in seen:
                        seen.add(token)
                        cur[key].append(item)
        self.files = merged

        # class name -> merged view {stat_fields, registered(set|None)}
        self.classes = {}
        for ff in self.files.values():
            for cls in ff["classes"]:
                cur = self.classes.setdefault(cls["name"], {
                    "stat_fields": {}, "pool_fields": {},
                    "unordered_fields": {}, "registered": None,
                    "decl_file": ff["file"], "line": cls["line"]})
                for fld in cls["stat_fields"]:
                    cur["stat_fields"].setdefault(
                        fld["name"], (ff["file"], fld["line"], fld["type"]))
                for fld in cls["pool_fields"]:
                    cur["pool_fields"].setdefault(
                        fld["name"], (ff["file"], fld["line"], fld["type"]))
                for fld in cls["unordered_fields"]:
                    cur["unordered_fields"].setdefault(
                        fld["name"], (ff["file"], fld["line"], fld["type"]))
                if cls["registered"] is not None:
                    if cur["registered"] is None:
                        cur["registered"] = set()
                    cur["registered"].update(cls["registered"])

        self.pooled_names = set()
        for ff in self.files.values():
            self.pooled_names.update(ff["pooled_names"])
            for cls in ff["classes"]:
                for fld in cls["pool_fields"]:
                    self.pooled_names.add(fld["name"])

        self.unordered_member_names = {}
        for name, cls in self.classes.items():
            for fname, (file, line, ftype) in cls["unordered_fields"].items():
                self.unordered_member_names[fname] = (name, file, line)


class Finding:
    def __init__(self, rule, file, line, key, message, severity="error"):
        self.rule = rule
        self.file = file
        self.line = line
        self.key = key
        self.message = message
        self.severity = severity

    def render(self):
        sev = "" if self.severity == "error" else f" ({self.severity})"
        return f"{self.file}:{self.line}: [{self.rule}]{sev} {self.message}"


RULES = {}


def rule(rid, title):
    def wrap(fn):
        RULES[rid] = (title, fn)
        return fn
    return wrap


# ---------------------------------------------------------------------------
# R7: shard confinement / pointer escape
# ---------------------------------------------------------------------------

# Files allowed to touch shard engines directly: the array front-end
# that owns them and the sim layer that implements the group.
SHARD_ENGINE_OWNERS = ("src/core/array.cc", "src/core/array.hh",
                       "src/sim/")


@rule("R7", "shard confinement / pointer escape")
def rule_r7(prog):
    for ff in prog.files.values():
        for lam in ff["lambdas"]:
            if lam["sink"] not in CROSSING_SINKS:
                continue
            for cap in lam["captures"]:
                name = cap["name"]
                pooled = name in prog.pooled_names or (
                    cap.get("init") and any(
                        p in cap.get("init_expr", "")
                        for p in ("makePooled", "PoolPtr")))
                if pooled:
                    yield Finding(
                        "R7", ff["file"], lam["line"],
                        f"capture:{name}",
                        f"lambda passed to {lam['sink']}() captures "
                        f"pooled handle '{name}': PoolPtr refcounts are "
                        f"non-atomic and shard-confined; crossing the "
                        f"host<->shard message path hands the refcount "
                        f"to another thread. Copy the payload out, or "
                        f"allocate it from the receiving side's pool")
        for g in ff["global_pooled"]:
            if ff["file"].endswith("sim/pool.hh"):
                continue
            yield Finding(
                "R7", ff["file"], g["line"], f"global:{g['name']}",
                f"file-scope pooled object '{g['name']}': pools are "
                f"owned by one shard's component tree; global pooled "
                f"state is reachable from every shard thread")
        for use in ff["shard_engine_uses"]:
            if any(ff["file"].startswith(p) or
                   ("/" + p) in ("/" + ff["file"])
                   for p in SHARD_ENGINE_OWNERS):
                continue
            yield Finding(
                "R7", ff["file"], use["line"], "shardEngine",
                "direct shardEngine() access outside the array "
                "front-end (core/array.*) and sim/: model code must "
                "reach shard state through the EngineGroup message "
                "path, never by scheduling on another shard's engine")


# ---------------------------------------------------------------------------
# R8: registration / pairing completeness
# ---------------------------------------------------------------------------


@rule("R8", "stat registration and trace-span pairing completeness")
def rule_r8(prog):
    for cname, cls in sorted(prog.classes.items()):
        if not cls["stat_fields"]:
            continue
        if cls["registered"] is None:
            # A stats-bearing class with no registerStats anywhere.
            for fname, (file, line, ftype) in \
                    sorted(cls["stat_fields"].items()):
                yield Finding(
                    "R8", file, line, f"{cname}::{fname}",
                    f"{cname} declares {ftype} '{fname}' but has no "
                    f"registerStats() anywhere in the program; the "
                    f"stat can never reach a --stats dump")
            continue
        for fname, (file, line, ftype) in \
                sorted(cls["stat_fields"].items()):
            if fname not in cls["registered"]:
                yield Finding(
                    "R8", file, line, f"{cname}::{fname}",
                    f"{ftype} member '{fname}' of {cname} is never "
                    f"referenced by {cname}::registerStats(); it will "
                    f"be invisible in every --stats dump")

    begins, ends = {}, {}
    for ff in prog.files.values():
        for sp in ff["spans"]:
            d = begins if sp["kind"] == "begin" else ends
            d.setdefault((sp["cat"], sp["name"]),
                         (ff["file"], sp["line"]))
    for key, (file, line) in sorted(begins.items()):
        if key not in ends and ("<dyn>", "<dyn>") not in ends and \
                (key[0], "<dyn>") not in ends:
            yield Finding(
                "R8", file, line, f"span:{key[0]}/{key[1]}",
                f"async span ({key[0]}, {key[1]}) is opened by "
                f"asyncBegin but never closed by any asyncEnd in the "
                f"program; the span will dangle in every trace")
    for key, (file, line) in sorted(ends.items()):
        if key not in begins and ("<dyn>", "<dyn>") not in begins and \
                (key[0], "<dyn>") not in begins:
            yield Finding(
                "R8", file, line, f"span:{key[0]}/{key[1]}",
                f"async span ({key[0]}, {key[1]}) is closed by "
                f"asyncEnd but never opened by any asyncBegin in the "
                f"program")


# ---------------------------------------------------------------------------
# R9: tick safety
# ---------------------------------------------------------------------------


@rule("R9", "tick narrowing and latency arithmetic")
def rule_r9(prog):
    for ff in prog.files.values():
        for c in ff["narrow_casts"]:
            yield Finding(
                "R9", ff["file"], c["line"], f"cast:{c['to']}",
                f"narrowing cast of a Tick expression to '{c['to']}' "
                f"({c['expr']}): Tick is u64 nanoseconds; anything "
                f"smaller or signed truncates after ~4.3 s of simulated "
                f"time. Keep ticks in Tick and convert at the edge "
                f"with ticksToUs()/ticksToMs()")
        for d in ff["narrow_decls"]:
            yield Finding(
                "R9", ff["file"], d["line"], f"decl:{d['name']}",
                f"'{d['to']} {d['name']} = {d['expr']}' seeds a "
                f"narrower integer from a Tick expression; declare it "
                f"Tick (or convert explicitly at a reporting edge)")
        for s in ff["tick_subs"]:
            if not s["guarded"]:
                yield Finding(
                    "R9", ff["file"], s["line"],
                    f"sub:{s['a']}-{s['b']}",
                    f"tick subtraction '{s['a']} - {s['b']}' with no "
                    f"visible ordering guard in this file: Tick is "
                    f"unsigned, so a reversed pair wraps to ~1.8e19",
                    severity="warning")


# ---------------------------------------------------------------------------
# R10: AST-backed upgrades of lint R1-R3
# ---------------------------------------------------------------------------


@rule("R10", "alias-aware upgrades of lint R1-R3")
def rule_r10(prog):
    # R2 upgrade: iteration over unordered containers reached through
    # an alias or a member declared in another file.
    tracked = {}
    for ff in prog.files.values():
        for un in ff["unordered_names"]:
            tracked[un["name"]] = (un.get("via", "?"), ff["file"])
    tracked.update({k: (v[0], v[1])
                    for k, v in prog.unordered_member_names.items()})
    for ff in prog.files.values():
        suppressed_lines = set()
        for it in ff["iterations"]:
            if it["name"] in tracked:
                via, decl_file = tracked[it["name"]]
                yield Finding(
                    "R10", ff["file"], it["line"],
                    f"unordered-iter:{it['name']}",
                    f"iteration over '{it['name']}' whose resolved type "
                    f"(via {via}, declared in {decl_file}) is an "
                    f"unordered container: traversal order depends on "
                    f"hash seed and rehash history. Use a sorted "
                    f"accessor or an ordered container")
        for lam in ff["lambdas"]:
            if lam["default"]:
                yield Finding(
                    "R10", ff["file"], lam["line"],
                    f"default-capture:{lam['default']}",
                    f"lambda with default capture [{lam['default']}] "
                    f"hides the capture set; spell captures out so the "
                    f"event callback's inline footprint is auditable")
        for u in ff["using_libc"]:
            yield Finding(
                "R10", ff["file"], u["line"], f"using:{u['name']}",
                f"'using {u['name']}' pulls unqualified libc "
                f"randomness/time into scope, defeating the R1 "
                f"determinism lint's qualified-name patterns")
        for c in ff["libc_calls"]:
            yield Finding(
                "R10", ff["file"], c["line"], f"libc:{c['name']}",
                f"unqualified {c['name']}() reached through a "
                f"using-declaration: wall clocks and the C PRNG break "
                f"run-to-run determinism; use sim/rng.hh")


# ---------------------------------------------------------------------------
# Suppression: inline allow comments + the allowlist file.
# ---------------------------------------------------------------------------

INLINE_ALLOW = re.compile(r"//\s*analyze:allow\s+(R\d+)\b")
# R10's unordered-iteration check is the alias-aware upgrade of lint
# R2, so a walk the lint already sanctioned stays sanctioned here.
LINT_ALLOW_UNORDERED = "lint:allow unordered-iteration"


def load_allowlist(path):
    """[(rule, pattern, justification)]; malformed entries are fatal."""
    entries = []
    problems = []
    if not path or not Path(path).exists():
        return entries, problems
    for no, raw in enumerate(
            Path(path).read_text(encoding="utf-8").splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if "#" not in line:
            problems.append(
                f"{path}:{no}: allowlist entry has no '#' justification "
                f"comment; every suppression must say why")
            continue
        body, _, justification = line.partition("#")
        if not justification.strip():
            problems.append(
                f"{path}:{no}: empty justification after '#'")
            continue
        parts = body.split()
        if len(parts) != 2 or not re.match(r"^R\d+$", parts[0]):
            problems.append(
                f"{path}:{no}: expected 'R<N> <file-glob>:<key-glob>'; "
                f"got '{body.strip()}'")
            continue
        entries.append((parts[0], parts[1], justification.strip(), no))
    return entries, problems


def apply_suppressions(findings, allow_entries, sources_root):
    kept = []
    used = set()
    raw_cache = {}
    for f in findings:
        # inline allow on the line or the line above
        path = Path(sources_root) / f.file
        if path not in raw_cache:
            try:
                raw_cache[path] = path.read_text(
                    encoding="utf-8").splitlines()
            except OSError:
                raw_cache[path] = []
        raws = raw_cache[path]
        inline = False
        for lineno in (f.line, f.line - 1):
            if 1 <= lineno <= len(raws):
                m = INLINE_ALLOW.search(raws[lineno - 1])
                if m and m.group(1) == f.rule:
                    inline = True
                if f.rule == "R10" and \
                        f.key.startswith("unordered-iter:") and \
                        LINT_ALLOW_UNORDERED in raws[lineno - 1]:
                    inline = True
        if inline:
            continue
        target = f"{f.file}:{f.key}"
        matched = False
        for rid, pattern, _just, no in allow_entries:
            if rid == f.rule and fnmatch.fnmatch(target, pattern):
                matched = True
                used.add(no)
        if not matched:
            kept.append(f)
    unused = [(rid, pat, no) for rid, pat, _j, no in allow_entries
              if no not in used]
    return kept, unused


# ---------------------------------------------------------------------------
# Drivers
# ---------------------------------------------------------------------------


def analyze_files(paths, root, frontend, cache_dir):
    """Per-file (text) or per-TU (clang) extraction -> Program."""
    facts = []
    if frontend == "text":
        for path in paths:
            rel = str(Path(path).resolve().relative_to(Path(root).resolve()))
            data = Path(path).read_bytes()
            key = cache_key("text", data)
            facts.append(cached_extract(
                cache_dir, "text", key,
                lambda d=data, r=rel: extract_text(
                    r, d.decode("utf-8", "replace"))))
        return Program(facts)
    raise SystemExit(f"unknown frontend '{frontend}'")


def analyze_clang(build_dir, root, cache_dir, only_src=True):
    clang = find_clang()
    if not clang:
        raise SystemExit(
            "dssd_analyze: no clang driver found for --frontend clang; "
            "install clang or use --frontend text")
    ccj = Path(build_dir) / "compile_commands.json"
    if not ccj.exists():
        raise SystemExit(f"dssd_analyze: {ccj} not found; configure "
                         f"cmake first (CMAKE_EXPORT_COMPILE_COMMANDS)")
    entries = json.loads(ccj.read_text(encoding="utf-8"))
    facts = []
    root_r = Path(root).resolve()
    for entry in entries:
        src = Path(entry["file"])
        try:
            rel = str(src.resolve().relative_to(root_r))
        except ValueError:
            continue
        if only_src and not rel.startswith("src/"):
            continue
        data = src.read_bytes() + json.dumps(
            clang_tu_args(entry), sort_keys=True).encode()
        key = cache_key("clang", data)

        def produce(e=entry, r=rel, s=src):
            # A TU the clang path cannot handle (driver quirk, flag
            # mismatch, JSON shape drift) degrades to the text
            # extractor for that file rather than killing the run.
            try:
                return extract_clang_tu(clang, e, root_r)
            except (RuntimeError, json.JSONDecodeError, OSError,
                    KeyError, TypeError) as exc:
                print(f"dssd_analyze: note: clang frontend failed on "
                      f"{r} ({exc}); using text extraction for it",
                      file=sys.stderr)
                return [extract_text(
                    r, s.read_text(encoding="utf-8", errors="replace"))]
        facts.extend(cached_extract(cache_dir, "clang", key, produce))
    # clang facts are keyed to src/-relative? no: repo-relative; keep
    # only src/ files so test/bench code is out of scope like the lint.
    facts = [f for f in facts if f["file"].startswith("src/")]
    # Strip the src/ prefix? No: findings print repo-relative paths.
    return Program(facts)


def run_rules(prog, selected):
    findings = []
    for rid, (_title, fn) in sorted(RULES.items()):
        if selected and rid not in selected:
            continue
        findings.extend(fn(prog))
    findings.sort(key=lambda f: (f.file, f.line, f.rule, f.key))
    return findings


# ---------------------------------------------------------------------------
# Self-test over fixture TUs
# ---------------------------------------------------------------------------

TRIP_RE = re.compile(r"//\s*trip:(R\d+)\b")


def self_test(fixture_dir, frontend, selected):
    fixture_dir = Path(fixture_dir)
    fixtures = sorted(fixture_dir.glob("*.cc"))
    if not fixtures:
        print(f"dssd_analyze: no fixtures under {fixture_dir}",
              file=sys.stderr)
        return 2
    failures = 0
    for fx in fixtures:
        text = fx.read_text(encoding="utf-8")
        expected = set()
        for no, raw in enumerate(text.splitlines(), 1):
            for m in TRIP_RE.finditer(raw):
                if not selected or m.group(1) in selected:
                    expected.add((no, m.group(1)))
        facts = extract_text(fx.name, text)
        prog = Program([facts])
        findings = [f for f in run_rules(prog, selected)
                    if f.severity == "error"]
        # Fixtures may annotate warnings explicitly with trip:R9w? No:
        # warnings participate when annotated via trip on the line.
        warn = [f for f in run_rules(prog, selected)
                if f.severity != "error"]
        got = {(f.line, f.rule) for f in findings}
        got_warn = {(f.line, f.rule) for f in warn}
        missing = expected - got - got_warn
        surplus = got - expected
        status = "ok" if not missing and not surplus else "FAIL"
        print(f"  {status:4s} {fx.name}: expected {len(expected)} "
              f"finding(s), got {len(got)} error(s) + "
              f"{len(got_warn)} warning(s)")
        for line, rid in sorted(missing):
            print(f"       missing: {fx.name}:{line} [{rid}] "
                  f"(annotated but did not fire)")
            failures += 1
        for line, rid in sorted(surplus):
            msg = next(f.message for f in findings
                       if (f.line, f.rule) == (line, rid))
            print(f"       surplus: {fx.name}:{line} [{rid}] {msg}")
            failures += 1
    if failures:
        print(f"dssd_analyze --self-test: {failures} mismatch(es)")
        return 1
    print(f"dssd_analyze --self-test: {len(fixtures)} fixture(s) ok "
          f"({frontend} frontend)")
    return 0


# ---------------------------------------------------------------------------
# main
# ---------------------------------------------------------------------------


def main(argv):
    ap = argparse.ArgumentParser(
        description="whole-program analyzer for the dssd tree "
                    "(rules R7-R10; see DESIGN.md §13)")
    ap.add_argument("--root", default=".",
                    help="repository root (default .)")
    ap.add_argument("--src", default="src",
                    help="source tree to analyze, relative to --root")
    ap.add_argument("--build-dir", default="build",
                    help="build dir holding compile_commands.json "
                         "(clang frontend)")
    ap.add_argument("--frontend", choices=("auto", "clang", "text"),
                    default="auto",
                    help="fact extractor: clang AST JSON or the "
                         "bundled text extractor (auto: clang when a "
                         "driver exists, else text)")
    ap.add_argument("--cache-dir", default=None,
                    help="fact cache directory (default "
                         "<build-dir>/analyze-cache; '' disables)")
    ap.add_argument("--rule", default=None,
                    help="comma-separated rule subset (e.g. R7,R9)")
    ap.add_argument("--allowlist",
                    default="tools/analyze/ALLOWLIST",
                    help="allowlist file (relative to --root)")
    ap.add_argument("--self-test", metavar="DIR", default=None,
                    help="analyze fixture TUs in DIR standalone and "
                         "check their // trip:<RULE> annotations")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--json", metavar="FILE", default=None,
                    help="also write findings as JSON")
    ap.add_argument("-W", "--warnings-as-errors", action="store_true",
                    help="advisory findings fail the run too")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rid, (title, _fn) in sorted(RULES.items()):
            print(f"{rid:4s} {title}")
        return 0

    selected = None
    if args.rule:
        selected = {r.strip() for r in args.rule.split(",") if r.strip()}
        unknown = selected - set(RULES)
        if unknown:
            print(f"dssd_analyze: unknown rule(s): "
                  f"{', '.join(sorted(unknown))}", file=sys.stderr)
            return 2

    frontend = args.frontend
    if frontend == "auto":
        frontend = "clang" if find_clang() else "text"

    if args.self_test:
        return self_test(args.self_test, frontend, selected)

    root = Path(args.root)
    cache_dir = args.cache_dir
    if cache_dir is None:
        cache_dir = str(Path(args.build_dir) / "analyze-cache")
    if cache_dir == "":
        cache_dir = None

    if frontend == "clang":
        prog = analyze_clang(args.build_dir, root, cache_dir)
    else:
        src_root = root / args.src
        if not src_root.is_dir():
            print(f"dssd_analyze: no such directory: {src_root}",
                  file=sys.stderr)
            return 2
        paths = sorted(src_root.rglob("*.hh")) + \
            sorted(src_root.rglob("*.cc"))
        prog = analyze_files(paths, root, "text", cache_dir)

    allow_path = root / args.allowlist
    entries, problems = load_allowlist(allow_path)
    for p in problems:
        print(p)
    findings = run_rules(prog, selected)
    findings, unused = apply_suppressions(findings, entries, root)

    errors = [f for f in findings if f.severity == "error"]
    warnings = [f for f in findings if f.severity != "error"]
    for f in findings:
        print(f.render())
    for rid, pat, no in unused:
        print(f"{allow_path}:{no}: note: allowlist entry "
              f"'{rid} {pat}' matched nothing (stale?)")

    if args.json:
        doc = [{"rule": f.rule, "file": f.file, "line": f.line,
                "key": f.key, "severity": f.severity,
                "message": f.message} for f in findings]
        Path(args.json).write_text(json.dumps(doc, indent=1),
                                   encoding="utf-8")

    n_files = len(prog.files)
    print(f"dssd_analyze: {n_files} file(s), {len(errors)} error(s), "
          f"{len(warnings)} warning(s) [{frontend} frontend]")
    if problems:
        return 2
    if errors or (args.warnings_as_errors and warnings):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
