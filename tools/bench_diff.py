#!/usr/bin/env python3
"""Compare two benchmark JSON files and flag regressions.

Understands both machine-readable formats this repo produces:

 - the harness JsonSeriesWriter document
   ({"bench": id, "series": {name: [v, ...]}}) written by the fig
   benches with --json, e.g. the committed BENCH_fig18.json;
 - google-benchmark --benchmark_out JSON
   ({"benchmarks": [{"name": .., "real_time": .., "cpu_time": ..}]}),
   e.g. the committed BENCH_micro.json.

Usage:
    tools/bench_diff.py OLD.json NEW.json [--tol FRAC]
    tools/bench_diff.py --git [--git-ref REF] BENCH_fig18.json
                        [NEW.json] [--tol FRAC]

With --git, OLD is the committed version of the file (git show
REF:path, REF from --git-ref, default HEAD) and NEW defaults to the
working-tree copy — i.e. "did my change move the numbers I'm about
to commit?".

Every metric present in both files is compared; a relative change
beyond --tol (default 10%, generous because CI machines are noisy)
in the *bad* direction is a failure. Direction is inferred from the
metric name: throughput-ish series (gbps, scaling, iops, *_per_s,
items_per_second) must not drop; time-ish metrics (ms, ns, time,
latency, p99...) must not grow. Unknown names are reported but never
fail the diff. Metrics present on only one side are listed as
added/removed. Exit 1 on any regression, else 0.
"""

import argparse
import json
import subprocess
import sys

# Substrings that classify a metric: bigger-is-better vs smaller-is-
# better. Checked in order; first hit wins.
HIGHER_IS_BETTER = ("gbps", "scaling", "iops", "per_s", "per_second",
                    "throughput", "bandwidth")
LOWER_IS_BETTER = ("wall_ms", "_ms", "_ns", "_us", "time", "latency",
                   "p99", "p999", "stall")


def flatten(doc):
    """Reduce either JSON schema to an ordered {name: [floats]} dict."""
    if "series" in doc:
        return {str(k): [float(x) for x in v]
                for k, v in doc["series"].items()}
    if "benchmarks" in doc:
        out = {}
        for b in doc["benchmarks"]:
            if b.get("run_type") == "aggregate" and \
                    b.get("aggregate_name") not in (None, "mean"):
                continue  # keep mean, skip median/stddev/cv rows
            name = b["name"]
            for field in ("real_time", "cpu_time", "items_per_second"):
                if field in b:
                    out.setdefault(f"{name}/{field}", []).append(
                        float(b[field]))
        return out
    raise SystemExit("bench_diff: unrecognized JSON schema "
                     "(no 'series' or 'benchmarks' key)")


def direction(name):
    low = name.lower()
    for s in HIGHER_IS_BETTER:
        if s in low:
            return +1
    for s in LOWER_IS_BETTER:
        if s in low:
            return -1
    return 0


def load(path, git_ref=None):
    if git_ref is not None:
        blob = subprocess.run(
            ["git", "show", f"{git_ref}:{path}"],
            capture_output=True, text=True, check=True).stdout
        return flatten(json.loads(blob))
    with open(path, encoding="utf-8") as f:
        return flatten(json.load(f))


def main(argv):
    ap = argparse.ArgumentParser(
        description="diff two benchmark JSON files")
    ap.add_argument("old", help="baseline JSON (or the path inside "
                                "the git ref with --git)")
    ap.add_argument("new", nargs="?", default=None,
                    help="candidate JSON; with --git defaults to the "
                         "working-tree copy of OLD")
    ap.add_argument("--git", action="store_true",
                    help="read the baseline from git (--git-ref) "
                         "instead of the filesystem")
    ap.add_argument("--git-ref", metavar="REF", default="HEAD",
                    help="ref the baseline is read from with --git "
                         "(default HEAD)")
    ap.add_argument("--tol", type=float, default=0.10,
                    help="relative regression tolerance "
                         "(default 0.10 = 10%%)")
    args = ap.parse_args(argv)

    old = load(args.old, git_ref=args.git_ref if args.git else None)
    new = load(args.new if args.new is not None else args.old)

    regressions = 0
    for name in old:
        if name not in new:
            print(f"  removed   {name}")
            continue
        a, b = old[name], new[name]
        n = min(len(a), len(b))
        if len(a) != len(b):
            print(f"  reshaped  {name}: {len(a)} -> {len(b)} points; "
                  f"comparing the first {n}")
        for i in range(n):
            if a[i] == 0:
                continue
            rel = (b[i] - a[i]) / abs(a[i])
            sense = direction(name)
            bad = (sense > 0 and rel < -args.tol) or \
                  (sense < 0 and rel > args.tol)
            tag = "REGRESSED" if bad else (
                "improved " if sense != 0 and abs(rel) > args.tol
                else "ok       ")
            if bad or abs(rel) > args.tol:
                print(f"  {tag} {name}[{i}]: "
                      f"{a[i]:.6g} -> {b[i]:.6g} ({rel:+.1%})")
            if bad:
                regressions += 1
    for name in new:
        if name not in old:
            print(f"  added     {name}")

    if regressions:
        print(f"bench_diff: {regressions} regression(s) beyond "
              f"{args.tol:.0%}")
        return 1
    print(f"bench_diff: {len(old)} metric(s) compared, "
          f"no regression beyond {args.tol:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
