#!/usr/bin/env python3
"""Determinism and hygiene lint for the dssd simulator sources.

Enforced over every .hh/.cc under src/:

R1  determinism: no wall-clock or C random APIs. Simulation results
    must be a pure function of the configuration and seed, so the
    model may not consult std::chrono clocks, time(), gettimeofday(),
    clock(), std::random_device, or std::rand/srand. All randomness
    flows through the seeded wrapper in sim/rng.hh (the one exempted
    file).

R2  iteration order: no iteration over std::unordered_map or
    std::unordered_set. Their traversal order depends on the hash
    seed and rehash history, so iterating one to produce output,
    pick a victim, or feed an audit makes results differ between
    otherwise-identical runs. Use the sorted accessors (e.g.
    SuperblockRemapTable::entriesSorted()) or an ordered container.

R3  event-callback budget: the engine stores callbacks inline in
    pooled 160-byte event nodes (kInlineCallbackBytes). sim/engine.hh
    must keep declaring that budget and the static_assert pinning
    sizeof(Event) == 160. Default lambda captures ([=] / [&]) are
    banned in src/ because they make capture sets - and thus
    callback sizes - invisible at the call site.

R4  header hygiene: include guards spell the header path
    (src/ftl/mapping.hh -> DSSD_FTL_MAPPING_HH), headers never say
    `using namespace`, and project includes are written as quoted
    subdir paths ("sim/engine.hh"), never relative ("engine.hh").

R5  layering: each src/ subdirectory may only include headers from
    the layers below it, per the dependency DAG in LAYER_DEPS (which
    mirrors the target_link_libraries edges in the per-directory
    CMakeLists and the layer diagram in DESIGN.md). Same-directory
    includes are always allowed. A new cross-layer edge is a design
    decision: add it here AND to the CMake link line AND to DESIGN.md,
    or restructure (the fault/ Routes callbacks show the pattern for
    keeping an upward reference out of the DAG).

R6  confined threading: all cross-thread machinery lives in
    sim/engine_group.{hh,cc} (the conservative parallel-DES
    coordinator). Everywhere else in src/, <thread>, <mutex>,
    <condition_variable>, <atomic>, <future>, std::async,
    thread_local, and std::this_thread are banned: model code runs
    single-threaded inside one engine (or thread-confined inside one
    shard of an EngineGroup), and ad-hoc threading breaks the
    bit-identical N-thread == 1-thread guarantee. Unordered
    cross-thread merges are exactly the bug class the EngineGroup's
    deterministic (tick, shard, emission-order) merge exists to
    prevent - route new parallelism through it.

R7  policy registry: every concrete GC policy class in
    src/ftl/policy.cc (a class deriving from VictimPolicy or
    AllocPolicy) must be constructed by an entry of the factory
    registry in the same file, and every registered policy name
    string must appear in tests/ftl/policy_test.cc. A policy that
    can be named but not built dies at runtime; one that is built
    but never tested is dead weight. This is a whole-repo check: it
    runs when the lint root is src/ (or contains ftl/policy.cc) and
    reads the test fixture next to it.

Suppression: any rule may be waived for one line with a trailing
comment on the flagged line or the line directly above it, naming
the rule by id or by slug:

    // lint:allow R2
    // lint:allow unordered-iteration

(the slug form is the legacy spelling for R2 and remains valid for
every rule; slugs are listed in RULE_NAMES). A suppression is a
claim that the flagged construct is deliberate and safe - say why
in the surrounding comment.

Usage: dssd_lint.py [--rule R2 ...] [root]
--rule restricts the run to the named rule(s) (id or slug,
repeatable); the default is all rules. Exit status is non-zero when
any active rule fires; diagnostics are file:line: messages suitable
for CI annotation.
"""

import argparse
import re
import sys
from pathlib import Path

# Rule ids and their slug names; `// lint:allow <id-or-slug>`
# suppresses the rule on that line (or the line below the comment).
RULE_NAMES = {
    "R1": "determinism",
    "R2": "unordered-iteration",
    "R3": "capture-budget",
    "R4": "header-hygiene",
    "R5": "layering",
    "R6": "threading",
    "R7": "policy-registry",
}

ALLOW_RE = re.compile(r"lint:allow\s+([A-Za-z0-9-]+)")

# R1: forbidden calls/types, with the reason shown in the diagnostic.
R1_PATTERNS = [
    (re.compile(r"std::chrono::(system|steady|high_resolution)_clock"),
     "wall-clock time in the model breaks run-to-run determinism"),
    (re.compile(r"\bgettimeofday\s*\("),
     "wall-clock time in the model breaks run-to-run determinism"),
    (re.compile(r"(?<![\w:])time\s*\(\s*(NULL|nullptr|0)?\s*\)"),
     "wall-clock time in the model breaks run-to-run determinism"),
    (re.compile(r"(?<![\w:.])clock\s*\(\s*\)"),
     "CPU-clock sampling in the model breaks run-to-run determinism"),
    (re.compile(r"std::random_device"),
     "non-deterministic seeding; take an explicit seed and use "
     "sim/rng.hh"),
    (re.compile(r"(?<![\w:])s?rand\s*\(|std::s?rand\b"),
     "C PRNG is unseeded global state; use sim/rng.hh"),
]

R1_EXEMPT = {Path("sim") / "rng.hh"}

# R2: names of unordered containers declared in the file (or its
# companion header) are tracked, then any range-for / begin() walk
# over them is flagged.
UNORDERED_DECL = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;{}()]*>\s*"
    r"(?:&\s*)?(\w+)\s*[;={(]")
RANGE_FOR = re.compile(r"\bfor\s*\(.*?:\s*(?:\*\s*)?([A-Za-z_]\w*)\s*\)")
# begin() starts a walk; a bare end() is almost always a find()
# comparison, which is order-independent and fine.
BEGIN_WALK = re.compile(r"\b([A-Za-z_]\w*)\s*[.]\s*c?begin\s*\(")

R3_DEFAULT_CAPTURE = re.compile(r"\[\s*[=&]\s*[,\]]")

USING_NAMESPACE = re.compile(r"^\s*using\s+namespace\b")
INCLUDE_QUOTED = re.compile(r'^\s*#\s*include\s+"([^"]+)"')
GUARD_IFNDEF = re.compile(r"^\s*#\s*ifndef\s+(\w+)")

# R6: threading primitives, confined to the engine-group coordinator.
R6_PATTERNS = [
    (re.compile(r"#\s*include\s*<(thread|mutex|condition_variable|"
                r"atomic|future|shared_mutex|stop_token|barrier|latch|"
                r"semaphore)>"),
     "threading header"),
    (re.compile(r"std::(thread|jthread|mutex|recursive_mutex|"
                r"shared_mutex|condition_variable|atomic|async|future|"
                r"promise|barrier|latch|counting_semaphore|"
                r"this_thread)\b"),
     "threading primitive"),
    (re.compile(r"\bthread_local\b"), "thread-local storage"),
]

R6_EXEMPT = {Path("sim") / "engine_group.hh",
             Path("sim") / "engine_group.cc"}

# R5: allowed include targets per src/ subdirectory (the layering DAG).
# A directory always may include itself; anything else must be listed.
LAYER_DEPS = {
    "sim": set(),
    "overhead": set(),
    "bus": {"sim"},
    "ecc": {"sim"},
    "nand": {"sim"},
    "reliability": {"sim"},
    "workload": {"sim"},
    "ftl": {"nand", "sim"},
    "fault": {"bus", "ecc", "ftl", "nand", "sim"},
    "noc": {"bus", "fault", "sim"},
    "controller": {"bus", "ecc", "fault", "nand", "sim"},
    "hil": {"sim", "workload"},
    "core": {"bus", "controller", "fault", "ftl", "nand", "noc",
             "reliability", "sim", "workload"},
}


def strip_comments_and_strings(line):
    """Drop string/char literals and // comments so patterns don't
    match inside them. Block comments are handled by the caller."""
    line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
    line = re.sub(r"'(?:[^'\\]|\\.)*'", "''", line)
    cut = line.find("//")
    if cut >= 0:
        line = line[:cut]
    return line


def logical_lines(text):
    """Yield (lineno, code, raw) with comments/strings stripped from
    `code`; block comments removed."""
    in_block = False
    for i, raw in enumerate(text.splitlines(), start=1):
        line = raw
        if in_block:
            end = line.find("*/")
            if end < 0:
                yield i, "", raw
                continue
            line = line[end + 2:]
            in_block = False
        # Remove complete /* ... */ spans, then detect an opener.
        line = re.sub(r"/\*.*?\*/", " ", line)
        start = line.find("/*")
        if start >= 0:
            line = line[:start]
            in_block = True
        yield i, strip_comments_and_strings(line), raw


def expected_guard(rel):
    """src/ftl/mapping.hh -> DSSD_FTL_MAPPING_HH"""
    parts = list(rel.parts)
    stem = rel.stem
    return "DSSD_" + "_".join(p.upper() for p in parts[:-1] + [stem]) \
        + "_HH"


def lint_file(path, rel, errors, active):
    text = path.read_text(encoding="utf-8")
    lines = list(logical_lines(text))

    def allowed(no, rule):
        """True when the raw line (or the one above) carries a
        `lint:allow` tag naming @p rule by id or slug."""
        tags = set()
        for idx in (no - 1, no - 2):
            if 0 <= idx < len(lines):
                tags.update(t.lower()
                            for t in ALLOW_RE.findall(lines[idx][2]))
        return rule.lower() in tags or RULE_NAMES[rule] in tags

    def report(no, rule, msg):
        if rule in active and not allowed(no, rule):
            errors.append(f"{path}:{no}: [{rule}] {msg}")

    # R1 ------------------------------------------------------------
    if rel not in R1_EXEMPT:
        for no, code, _ in lines:
            for pat, why in R1_PATTERNS:
                if pat.search(code):
                    report(no, "R1", f"{pat.pattern!r}: {why}")

    # R2 ------------------------------------------------------------
    unordered_names = set()
    for _, code, _ in lines:
        for m in UNORDERED_DECL.finditer(code):
            unordered_names.add(m.group(1))
    # Companion header declares the members the .cc iterates.
    if path.suffix == ".cc":
        header = path.with_suffix(".hh")
        if header.exists():
            for _, code, _ in logical_lines(
                    header.read_text(encoding="utf-8")):
                for m in UNORDERED_DECL.finditer(code):
                    unordered_names.add(m.group(1))
    for no, code, _ in lines:
        hits = set(RANGE_FOR.findall(code)) | set(BEGIN_WALK.findall(code))
        for name in hits & unordered_names:
            report(no, "R2",
                   f"iteration over unordered container '{name}' has "
                   f"hash-seed-dependent order; use a sorted accessor "
                   f"or append '// lint:allow {RULE_NAMES['R2']}'")

    # R3 ------------------------------------------------------------
    for no, code, _ in lines:
        if R3_DEFAULT_CAPTURE.search(code):
            report(no, "R3",
                   "default lambda capture hides the capture set; "
                   "spell captures out so the event callback's "
                   "inline-storage footprint is visible")
    if rel == Path("sim") / "engine.hh":
        if "kInlineCallbackBytes = 128" not in text:
            report(1, "R3",
                   "engine.hh no longer pins kInlineCallbackBytes = "
                   "128; the event-callback budget contract moved or "
                   "changed")
        if not re.search(r"static_assert\s*\(\s*sizeof\s*\(\s*Event\s*\)"
                         r"\s*==\s*160", text):
            report(1, "R3",
                   "engine.hh lost the static_assert(sizeof(Event) == "
                   "160) pinning the pooled event-node size")

    # R4 ------------------------------------------------------------
    if path.suffix == ".hh":
        guard = None
        for no, code, _ in lines:
            m = GUARD_IFNDEF.search(code)
            if m:
                guard = (no, m.group(1))
                break
        want = expected_guard(rel)
        if guard is None:
            report(1, "R4", f"missing include guard (expected {want})")
        elif guard[1] != want:
            report(guard[0], "R4",
                   f"include guard {guard[1]} should spell the header "
                   f"path: {want}")
        for no, code, _ in lines:
            if USING_NAMESPACE.search(code):
                report(no, "R4",
                       "'using namespace' in a header pollutes every "
                       "includer")
    for no, _, raw in lines:
        m = INCLUDE_QUOTED.match(raw)
        if m and "/" not in m.group(1):
            report(no, "R4",
                   f"project include \"{m.group(1)}\" must use its "
                   f"subdir-qualified path (e.g. \"sim/engine.hh\")")

    # R6 ------------------------------------------------------------
    if rel not in R6_EXEMPT:
        for no, code, _ in lines:
            for pat, what in R6_PATTERNS:
                m = pat.search(code)
                if m:
                    report(no, "R6",
                           f"{what} '{m.group(0)}' outside "
                           f"sim/engine_group.*: model code is "
                           f"thread-confined; cross-thread work must "
                           f"flow through the EngineGroup's "
                           f"deterministic merge, never an ad-hoc "
                           f"thread")

    # R5 ------------------------------------------------------------
    layer = rel.parts[0] if len(rel.parts) > 1 else None
    if layer in LAYER_DEPS:
        edges = LAYER_DEPS[layer] | {layer}
        for no, _, raw in lines:
            m = INCLUDE_QUOTED.match(raw)
            if not m or "/" not in m.group(1):
                continue
            target = m.group(1).split("/")[0]
            if target in LAYER_DEPS and target not in edges:
                report(no, "R5",
                       f"layering violation: {layer}/ may not include "
                       f"\"{m.group(1)}\" ({layer} -> {target} is not "
                       f"an edge of the dependency DAG; allowed: "
                       f"{', '.join(sorted(LAYER_DEPS[layer])) or 'none'})")
    elif layer is not None and path.suffix in {".hh", ".cc"}:
        report(1, "R5",
               f"directory src/{layer}/ is not in the layering DAG; "
               f"add it to LAYER_DEPS in dssd_lint.py")


POLICY_CLASS_RE = re.compile(
    r"class\s+(\w+)\s*(?:final\s*)?:\s*public\s+"
    r"(VictimPolicy|AllocPolicy)\b")
POLICY_NAME_RE = re.compile(r"\{\s*\"([a-z0-9_+-]+)\"\s*,")
MAKE_UNIQUE_RE = re.compile(r"std::make_unique<\s*(\w+)\s*>")


def lint_policy_registry(src_root, errors, active):
    """R7: concrete policies registered in the factory and named in
    the test fixture. Whole-repo check, anchored on ftl/policy.cc."""
    if "R7" not in active:
        return
    policy_cc = src_root / "ftl" / "policy.cc"
    if not policy_cc.exists():
        return
    text = policy_cc.read_text(encoding="utf-8")

    classes = {m.group(1) for m in POLICY_CLASS_RE.finditer(text)}
    built = set(MAKE_UNIQUE_RE.findall(text))
    for cls in sorted(classes - built):
        errors.append(
            f"{policy_cc}:1: [R7] concrete policy class '{cls}' is "
            f"never constructed by the factory registry in "
            f"policy.cc; register it (and name it in "
            f"tests/ftl/policy_test.cc)")

    # Registered names: the string literals of the registry entries.
    names = set()
    for block in re.findall(
            r"(?:VictimEntry|AllocEntry)\s+\w+Registry\[\]\s*=\s*\{(.*?)\n\};",
            text, re.S):
        names.update(POLICY_NAME_RE.findall(block))

    fixture = (src_root.parent / "tests" / "ftl" / "policy_test.cc")
    if not fixture.exists():
        errors.append(
            f"{policy_cc}:1: [R7] tests/ftl/policy_test.cc is "
            f"missing; the policy registry has no fixture coverage")
        return
    fixture_text = fixture.read_text(encoding="utf-8")
    for name in sorted(names):
        if f'"{name}"' not in fixture_text:
            errors.append(
                f"{policy_cc}:1: [R7] registered policy '{name}' is "
                f"never named in tests/ftl/policy_test.cc; add a "
                f"fixture that exercises it")


def resolve_rule(name):
    """Canonical rule id for @p name (id like 'R2' or slug like
    'unordered-iteration'), or None."""
    up = name.upper()
    if up in RULE_NAMES:
        return up
    low = name.lower()
    for rid, slug in RULE_NAMES.items():
        if slug == low:
            return rid
    return None


def main(argv):
    ap = argparse.ArgumentParser(
        prog="dssd_lint",
        description="Determinism and hygiene lint for dssd sources.")
    ap.add_argument("root", nargs="?", default="src",
                    help="source tree to lint (default: src)")
    ap.add_argument("--rule", action="append", default=[],
                    metavar="RULE",
                    help="run only this rule (id like R2 or slug like "
                         "unordered-iteration); repeatable")
    opts = ap.parse_args(argv[1:])

    active = set()
    for name in opts.rule:
        rid = resolve_rule(name)
        if rid is None:
            print(f"dssd_lint: unknown rule: {name} (known: "
                  f"{', '.join(f'{r} ({s})' for r, s in sorted(RULE_NAMES.items()))})",
                  file=sys.stderr)
            return 2
        active.add(rid)
    if not active:
        active = set(RULE_NAMES)

    root = Path(opts.root)
    if not root.is_dir():
        print(f"dssd_lint: no such directory: {root}", file=sys.stderr)
        return 2
    files = sorted(root.rglob("*.hh")) + sorted(root.rglob("*.cc"))
    if not files:
        print(f"dssd_lint: no sources under {root}", file=sys.stderr)
        return 2
    errors = []
    for f in files:
        lint_file(f, f.relative_to(root), errors, active)
    lint_policy_registry(root, errors, active)
    for e in errors:
        print(e)
    print(f"dssd_lint: {len(files)} files, {len(errors)} problem(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
