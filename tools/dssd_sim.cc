/**
 * @file
 * dssd_sim — command-line front-end for the simulator.
 *
 * Runs any architecture / GC policy / workload combination and prints
 * the full statistics block (bandwidth, latency profile, per-component
 * breakdown, bus utilization, GC activity). Useful for exploring
 * configurations beyond the per-figure benches.
 *
 * Examples:
 *   dssd_sim --arch=dssd_f --req-kb=128 --window-ms=50
 *   dssd_sim --arch=baseline --policy=tinytail --trace=prn_0
 *   dssd_sim --arch=dssd_b --read-ratio=0.7 --random --buffer=real
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/harness.hh"

using namespace dssd;
using namespace dssd::bench;

namespace
{

[[noreturn]] void
usage()
{
    std::printf(
        "usage: dssd_sim [options]\n"
        "  --arch=A        baseline|bw|dssd|dssd_b|dssd_f (default dssd_f)\n"
        "  --policy=P      pagc|preemptive|tinytail (default pagc)\n"
        "  --gc-policy=P   victim selection: greedy|costbenefit|windowed\n"
        "                  (default greedy)\n"
        "  --alloc-policy=P  host-write allocation: rr|conflict\n"
        "                  (default rr)\n"
        "  --gc-preempt    preemptible/partial GC rounds\n"
        "  --trace=NAME    replay a named trace profile (prn_0, ...)\n"
        "  --req-kb=N      synthetic request size in KB (default 4)\n"
        "  --read-ratio=R  fraction of reads (default 0)\n"
        "  --random        random offsets (default sequential)\n"
        "  --buffer=B      real|hit|miss (default miss)\n"
        "  --qd=N          queue depth (default 64)\n"
        "  --tenants=SPEC  multi-tenant host front-end: a count or\n"
        "                  ';'-separated \"qd:N,w:N,prio:N,rate:B,\n"
        "                  burst:B,slo:US,name:S\" groups\n"
        "  --arbiter=P     submission-queue arbitration: rr|wrr|prio\n"
        "                  (default rr; needs --tenants)\n"
        "  --arrival=SPEC  open-loop arrivals for every tenant:\n"
        "                  closed | poisson:IOPS | pareto:IOPS[:ALPHA]\n"
        "                  [,diurnal:AMP[:PERIOD_MS]]\n"
        "                  [,burst:FACTOR[:ON_MS[:OFF_MS]]]\n"
        "  --slo=US        per-tenant latency SLO target in us\n"
        "                  (tenants with slo:0 inherit it)\n"
        "  --shards=N      run an N-shard SsdArray front-end (default 1)\n"
        "  --engine-threads=N  per-shard engines under the conservative\n"
        "                  engine group with N workers (0 = one shared\n"
        "                  engine; any N >= 1 is bit-identical to N=1)\n"
        "  --array-gc=P    array GC coordination policy: uncoordinated|\n"
        "                  staggered|token|greedy (default uncoordinated)\n"
        "  --parity        rotating-parity striping + degraded reads\n"
        "                  (needs --shards >= 2)\n"
        "  --window-ms=N   measurement window (default 30)\n"
        "  --channels=N --ways=N --planes=N   geometry (8/4/8)\n"
        "  --blocks=N --pages=N               per-plane geometry (16/16)\n"
        "  --tlc           TLC timing and 16 KB pages (default ULL)\n"
        "  --topology=T    mesh|ring|crossbar for dSSD_f (default mesh)\n"
        "  --factor=F      on-chip bandwidth factor (default 1.25)\n"
        "  --no-gc         do not force GC during the window\n"
        "  --srt-remaps=N  pre-populate N SRT remaps per channel\n"
        "  --faults        enable the fault-injection model\n"
        "  --fault-seed=N  fault-model RNG seed (implies --faults)\n"
        "  --rber-scale=F  scale raw-bit-error severity (implies --faults)\n"
        "  --seed=N\n"
        "  --seeds=N       replicate over seeds seed..seed+N-1\n"
        "  --threads=N     worker threads for --seeds (default: all)\n"
        "  --trace-out=F   write a Chrome trace_event JSON of the run\n"
        "  --stats=F       dump the stat registry as JSON (- = stdout)\n");
    std::exit(1);
}

bool
flagValue(const char *arg, const char *name, const char **out)
{
    std::size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
        *out = arg + n + 1;
        return true;
    }
    return false;
}

ArchKind
parseArch(const std::string &s)
{
    if (s == "baseline")
        return ArchKind::Baseline;
    if (s == "bw")
        return ArchKind::BW;
    if (s == "dssd")
        return ArchKind::DSSD;
    if (s == "dssd_b")
        return ArchKind::DSSDBus;
    if (s == "dssd_f")
        return ArchKind::DSSDNoc;
    fatal("unknown arch '%s'", s.c_str());
}

GcPolicy
parsePolicy(const std::string &s)
{
    if (s == "pagc")
        return GcPolicy::Parallel;
    if (s == "preemptive")
        return GcPolicy::Preemptive;
    if (s == "tinytail")
        return GcPolicy::TinyTail;
    fatal("unknown policy '%s'", s.c_str());
}

BufferMode
parseBuffer(const std::string &s)
{
    if (s == "real")
        return BufferMode::Real;
    if (s == "hit")
        return BufferMode::AlwaysHit;
    if (s == "miss")
        return BufferMode::AlwaysMiss;
    fatal("unknown buffer mode '%s'", s.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    ExpParams p;
    p.arch = ArchKind::DSSDNoc;
    std::string trace;
    std::string tenants_spec;
    std::string arrival_spec;
    double slo_us = 0.0;
    unsigned seeds = 1;
    unsigned threads = 0;

    for (int i = 1; i < argc; ++i) {
        const char *v = nullptr;
        if (flagValue(argv[i], "--arch", &v))
            p.arch = parseArch(v);
        else if (flagValue(argv[i], "--policy", &v))
            p.gcPolicy = parsePolicy(v);
        else if (flagValue(argv[i], "--gc-policy", &v)) {
            if (!isVictimPolicy(v))
                fatal("unknown --gc-policy '%s' (supported: greedy "
                      "costbenefit windowed)",
                      v);
            p.victimPolicy = v;
        } else if (flagValue(argv[i], "--alloc-policy", &v)) {
            if (!isAllocPolicy(v))
                fatal("unknown --alloc-policy '%s' (supported: rr "
                      "conflict)",
                      v);
            p.allocPolicy = v;
        } else if (std::strcmp(argv[i], "--gc-preempt") == 0)
            p.gcPreempt = true;
        else if (flagValue(argv[i], "--trace", &v))
            trace = v;
        else if (flagValue(argv[i], "--req-kb", &v))
            p.requestBytes = std::strtoull(v, nullptr, 10) * kKiB;
        else if (flagValue(argv[i], "--read-ratio", &v))
            p.readRatio = std::strtod(v, nullptr);
        else if (std::strcmp(argv[i], "--random") == 0)
            p.sequential = false;
        else if (flagValue(argv[i], "--buffer", &v))
            p.bufferMode = parseBuffer(v);
        else if (flagValue(argv[i], "--qd", &v))
            p.queueDepth = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        else if (flagValue(argv[i], "--tenants", &v))
            tenants_spec = v;
        else if (flagValue(argv[i], "--arbiter", &v)) {
            auto policy = parseArbiterPolicy(v);
            if (!policy)
                fatal("unknown --arbiter policy '%s' (supported: rr "
                      "wrr prio)",
                      v);
            p.arbiter = *policy;
        } else if (flagValue(argv[i], "--arrival", &v))
            arrival_spec = v;
        else if (flagValue(argv[i], "--slo", &v)) {
            slo_us = std::strtod(v, nullptr);
            if (slo_us <= 0.0)
                fatal("--slo needs a positive latency target in us");
        }
        else if (flagValue(argv[i], "--shards", &v))
            p.shards = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        else if (flagValue(argv[i], "--array-gc", &v)) {
            auto policy = parseArrayGcPolicy(v);
            if (!policy) {
                fatal("unknown --array-gc policy '%s' (supported: "
                      "uncoordinated staggered token greedy)",
                      v);
            }
            p.arrayGc = *policy;
        } else if (std::strcmp(argv[i], "--parity") == 0)
            p.parity = true;
        else if (flagValue(argv[i], "--engine-threads", &v))
            p.engineThreads =
                static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        else if (flagValue(argv[i], "--window-ms", &v))
            p.window = msToTicks(std::strtod(v, nullptr));
        else if (flagValue(argv[i], "--channels", &v))
            p.channels = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        else if (flagValue(argv[i], "--ways", &v))
            p.ways = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        else if (flagValue(argv[i], "--planes", &v))
            p.planes = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        else if (flagValue(argv[i], "--blocks", &v))
            p.blocksPerPlane =
                static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
        else if (flagValue(argv[i], "--pages", &v))
            p.pagesPerBlock =
                static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
        else if (std::strcmp(argv[i], "--tlc") == 0)
            p.tlc = true;
        else if (flagValue(argv[i], "--topology", &v))
            p.nocTopology = v;
        else if (flagValue(argv[i], "--factor", &v))
            p.onChipFactor = std::strtod(v, nullptr);
        else if (std::strcmp(argv[i], "--no-gc") == 0)
            p.runGc = false;
        else if (flagValue(argv[i], "--srt-remaps", &v))
            p.srtRemapsPerChannel =
                static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        else if (std::strcmp(argv[i], "--faults") == 0)
            p.fault.enabled = true;
        else if (flagValue(argv[i], "--fault-seed", &v)) {
            p.fault.enabled = true;
            p.fault.seed = std::strtoull(v, nullptr, 10);
        } else if (flagValue(argv[i], "--rber-scale", &v)) {
            p.fault.enabled = true;
            p.fault.rberScale = std::strtod(v, nullptr);
        }
        else if (flagValue(argv[i], "--trace-out", &v))
            p.tracePath = v;
        else if (flagValue(argv[i], "--stats", &v))
            p.statsPath = v;
        else if (flagValue(argv[i], "--seeds", &v))
            seeds = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        else if (flagValue(argv[i], "--seed", &v))
            p.seed = std::strtoull(v, nullptr, 10);
        else if (flagValue(argv[i], "--threads", &v))
            threads = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        else
            usage();
    }
    if (!trace.empty())
        p.traceName = trace.c_str();

    if (!tenants_spec.empty()) {
        auto ts = parseTenantSpec(tenants_spec);
        if (!ts)
            fatal("bad --tenants spec '%s'", tenants_spec.c_str());
        ArrivalParams ap;
        if (!arrival_spec.empty()) {
            auto parsed = parseArrivalSpec(arrival_spec);
            if (!parsed)
                fatal("bad --arrival spec '%s'", arrival_spec.c_str());
            ap = *parsed;
        }
        for (TenantParams &t : *ts) {
            if (t.sloTargetUs == 0.0)
                t.sloTargetUs = slo_us;
            HostTenant ht;
            ht.tenant = t;
            ht.readRatio = p.readRatio;
            ht.sequential = p.sequential;
            ht.requestBytes = p.requestBytes;
            ht.arrival = ap;
            p.hostTenants.push_back(ht);
        }
    } else if (!arrival_spec.empty() || slo_us > 0.0) {
        fatal("--arrival/--slo need --tenants");
    }

    if (seeds > 1) {
        // Seed-replication mode: fan the runs over the worker pool and
        // summarize per seed (results are printed in seed order and
        // independent of the thread count).
        std::vector<ExpParams> ps(seeds, p);
        for (unsigned i = 0; i < seeds; ++i) {
            ps[i].seed = p.seed + i;
            if (i > 0) {
                // One output file, one run: only the base seed traces.
                ps[i].tracePath.clear();
                ps[i].statsPath.clear();
            }
        }
        std::vector<ExpResult> rs = runExperiments(ps, threads);
        std::printf("dssd_sim: %s, %u seeds starting at %llu\n",
                    archName(p.arch), seeds,
                    static_cast<unsigned long long>(p.seed));
        std::printf("%-6s  %12s  %10s  %10s  %10s\n", "seed", "BW",
                    "avg(us)", "p99(us)", "p99.9(us)");
        for (unsigned i = 0; i < seeds; ++i) {
            const ExpResult &r = rs[i];
            std::printf("%-6llu  %12s  %10.1f  %10.1f  %10.1f\n",
                        static_cast<unsigned long long>(ps[i].seed),
                        formatBandwidth(r.ioBytesPerSec).c_str(),
                        r.avgLatencyUs, r.p99LatencyUs, r.p999LatencyUs);
        }
        return 0;
    }

    std::printf("dssd_sim: %s, %ux%ux%u %s, %s%s, QD %u, window %.0f ms, "
                "GC %s (%s)\n",
                archName(p.arch), p.channels, p.ways, p.planes,
                p.tlc ? "TLC" : "ULL",
                p.traceName ? p.traceName
                            : strformat("%.0f%%rd %s %lluKB",
                                        100 * p.readRatio,
                                        p.sequential ? "seq" : "rand",
                                        (unsigned long long)(
                                            p.requestBytes / kKiB))
                                  .c_str(),
                p.shards > 1
                    ? strformat(", %u shards%s%s", p.shards,
                                p.arrayGc != ArrayGcPolicy::Uncoordinated
                                    ? strformat(" [%s]",
                                                arrayGcPolicyName(
                                                    p.arrayGc))
                                          .c_str()
                                    : "",
                                p.parity ? " +parity" : "")
                          .c_str()
                    : "",
                p.queueDepth, ticksToMs(p.window),
                p.runGc ? "on" : "off", gcPolicyName(p.gcPolicy));
    if (!p.hostTenants.empty()) {
        std::printf("host: %zu tenants, arbiter %s, arrival %s\n",
                    p.hostTenants.size(), arbiterPolicyName(p.arbiter),
                    arrival_spec.empty() ? "closed"
                                         : arrival_spec.c_str());
    }

    ExpResult r = runExperiment(p);

    std::printf("\nI/O bandwidth      : %s (%llu requests)\n",
                formatBandwidth(r.ioBytesPerSec).c_str(),
                static_cast<unsigned long long>(r.ioCompleted));
    std::printf("latency avg/p99/p99.9 : %.1f / %.1f / %.1f us\n",
                r.avgLatencyUs, r.p99LatencyUs, r.p999LatencyUs);
    for (std::size_t t = 0; t < r.tenants.size(); ++t) {
        const TenantResult &tr = r.tenants[t];
        std::printf("tenant %-12zu: %s, avg/p99/p99.9 "
                    "%.1f/%.1f/%.1f us, SLO %.4f (%llu violations, "
                    "%llu dropped)\n",
                    t, formatBandwidth(tr.ioBytesPerSec).c_str(),
                    tr.avgLatencyUs, tr.p99LatencyUs, tr.p999LatencyUs,
                    tr.sloCompliance,
                    static_cast<unsigned long long>(tr.sloViolations),
                    static_cast<unsigned long long>(tr.dropped));
    }
    std::printf("GC                 : %llu pages moved, %.0f pages/s\n",
                static_cast<unsigned long long>(r.gcPagesMoved),
                r.gcPagesPerSec);
    std::printf("system bus util    : I/O %.1f%%, GC %.1f%%\n",
                100 * r.busIoUtil, 100 * r.busGcUtil);
    LatencyBreakdown &io = r.ioBreakdown;
    std::printf("I/O breakdown (us) : flash %.1f, fbus %.1f, sbus %.1f, "
                "dram %.1f, ecc %.1f, noc %.1f, fw %.1f\n",
                ticksToUs(io.flashMem), ticksToUs(io.flashBus),
                ticksToUs(io.systemBus), ticksToUs(io.dram),
                ticksToUs(io.ecc), ticksToUs(io.noc),
                ticksToUs(io.other));
    LatencyBreakdown &cb = r.cbBreakdown;
    std::printf("copyback breakdown : flash %.1f, fbus %.1f, sbus %.1f, "
                "dram %.1f, ecc %.1f, noc %.1f\n",
                ticksToUs(cb.flashMem), ticksToUs(cb.flashBus),
                ticksToUs(cb.systemBus), ticksToUs(cb.dram),
                ticksToUs(cb.ecc), ticksToUs(cb.noc));
    return 0;
}
