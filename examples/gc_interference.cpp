/**
 * @file
 * GC-interference demo: reproduces the paper's motivating observation
 * (Fig 2) interactively. Runs the same sequential-write workload on a
 * conventional SSD and on dSSD_f, triggers GC mid-run, and prints the
 * per-millisecond I/O bandwidth so the dip (and its absence) is
 * visible in the terminal.
 */

#include <cstdio>

#include "core/gc.hh"
#include "core/ssd.hh"
#include "hil/driver.hh"

using namespace dssd;

namespace
{

void
run(ArchKind arch)
{
    SsdConfig config = makeConfig(arch);
    config.geom.ways = 4;
    config.geom.blocksPerPlane = 16;
    config.geom.pagesPerBlock = 16;
    config.writeBuffer.mode = BufferMode::AlwaysMiss;

    Engine engine;
    Ssd ssd(engine, config);
    ssd.prefill(0.8, 0.3);

    SyntheticParams wl;
    wl.requestBytes = 32 * kKiB; // high-bandwidth: all planes busy
    wl.sequential = true;
    wl.footprintBytes =
        ssd.mapping().lpnCount() * config.geom.pageBytes / 2;
    wl.count = 0;
    SyntheticGenerator gen(wl);
    QueueDriver driver(
        engine, gen,
        [&ssd](const IoRequest &req, Engine::Callback done) {
            ssd.submit(req, std::move(done));
        },
        64);
    driver.start();

    // Let I/O reach steady state, then unleash GC.
    const Tick gc_at = 8 * tickMs;
    const Tick window = 24 * tickMs;
    engine.schedule(gc_at, [&ssd] { ssd.gc().forceAll(2, [] {}); });
    engine.runUntil(window);
    driver.stop();
    engine.run();

    std::printf("\n=== %s ===  (GC fired at %.0f ms)\n", archName(arch),
                ticksToMs(gc_at));
    std::printf("%5s  %12s  %s\n", "t(ms)", "IO GB/s", "bar");
    auto series = driver.ioBytes().ratePerSec();
    for (std::size_t i = 0; i < series.size() && i < 24; ++i) {
        double gbps = series[i] / 1e9;
        std::printf("%5zu  %12.3f  ", i, gbps);
        int bars = static_cast<int>(gbps * 12);
        for (int b = 0; b < bars && b < 60; ++b)
            std::printf("#");
        std::printf("\n");
    }
    std::printf("GC moved %llu pages; system-bus GC bytes: %llu\n",
                static_cast<unsigned long long>(ssd.gc().pagesMoved()),
                static_cast<unsigned long long>(
                    ssd.systemBus().channel().bytesMoved(tagGc)));
}

} // namespace

int
main()
{
    std::printf("Reproducing the Fig 2 motivation: watch I/O bandwidth "
                "dip when GC shares the front-end,\nand stay flat when "
                "the back-end is decoupled.\n");
    run(ArchKind::Baseline);
    run(ArchKind::DSSDNoc);
    return 0;
}
