/**
 * @file
 * Global-copyback walk-through: issues one same-channel and one
 * cross-channel copyback and narrates the command-queue stages
 * (Issued -> R -> RE -> T -> W) exactly as Sec 4.2 describes them,
 * then shows the dynamic-superblock remapping of Sec 5 (Fig 6).
 */

#include <cstdio>

#include "core/ssd.hh"

using namespace dssd;

namespace
{

void
printStages(DecoupledController &c, const char *when)
{
    std::printf("  [%s] issued=%llu R=%llu RE=%llu T=%llu W=%llu\n",
                when,
                (unsigned long long)c.stageCount(CopybackStage::Issued),
                (unsigned long long)c.stageCount(CopybackStage::R),
                (unsigned long long)c.stageCount(CopybackStage::RE),
                (unsigned long long)c.stageCount(CopybackStage::T),
                (unsigned long long)c.stageCount(CopybackStage::W));
}

} // namespace

int
main()
{
    SsdConfig config = makeConfig(ArchKind::DSSDNoc);
    config.geom.blocksPerPlane = 16;
    config.geom.pagesPerBlock = 16;
    Engine engine;
    Ssd ssd(engine, config);
    ssd.prefill(0.5, 0.0);

    DecoupledController &src_ctrl = *ssd.decoupledController(0);
    DecoupledController &dst_ctrl = *ssd.decoupledController(5);

    std::printf("== Global copyback (Sec 4.2) ==\n");

    // Same-channel copyback: read -> dBUF -> ECC -> program.
    PhysAddr src = ssd.mapping().geometry().pageAddr(
        *ssd.mapping().translate(0));
    PhysAddr same = ssd.mapping().allocateInUnit(0, 1); // unit 1 = ch 0
    std::printf("\nsame-channel copyback: ch%u blk%u pg%u -> ch%u blk%u\n",
                src.channel, src.block, src.page, same.channel,
                same.block);
    printStages(src_ctrl, "before");
    LatencyBreakdown bd1;
    src_ctrl.globalCopyback(src, same, nullptr, tagGc, [] {}, &bd1);
    engine.run();
    printStages(src_ctrl, "after ");
    std::printf("  latency: flash %.1f us, flash-bus %.1f us, ecc %.1f "
                "us, fNoC %.1f us\n",
                ticksToUs(bd1.flashMem), ticksToUs(bd1.flashBus),
                ticksToUs(bd1.ecc), ticksToUs(bd1.noc));

    // Cross-channel copyback: packetized over the fNoC.
    PhysAddr src2 = ssd.mapping().geometry().pageAddr(
        *ssd.mapping().translate(8));
    std::uint32_t units_per_ch =
        ssd.mapping().unitCount() / config.geom.channels;
    PhysAddr far = ssd.mapping().allocateInUnit(8, 5 * units_per_ch);
    std::printf("\ncross-channel copyback: ch%u -> ch%u (route length "
                "%zu links)\n",
                src2.channel, far.channel,
                ssd.noc()->topology().route(src2.channel,
                                            far.channel).size());
    LatencyBreakdown bd2;
    src_ctrl.globalCopyback(src2, far, &dst_ctrl, tagGc, [] {}, &bd2);
    engine.run();
    printStages(src_ctrl, "after ");
    std::printf("  fNoC packets delivered: %llu, packet latency %.1f us\n",
                (unsigned long long)ssd.noc()->packetsDelivered(),
                ssd.noc()->latency().mean() / tickUs);
    std::printf("  system-bus bytes used by either copyback: %llu\n",
                (unsigned long long)ssd.systemBus().channel()
                    .bytesMoved(tagGc));

    // Dynamic superblock remapping (Fig 6): sub-block D dies, block A
    // from the RBT replaces it, the FTL keeps addressing D.
    std::printf("\n== Dynamic superblock (Sec 5, Fig 6) ==\n");
    const FlashGeometry &g = config.geom;
    PhysAddr block_d{};
    block_d.channel = 0;
    block_d.block = 3; // "2nd sub-block of superblock 3"
    PhysAddr block_a{};
    block_a.channel = 0;
    block_a.way = 1;
    block_a.block = 0; // recycled "sub-block of superblock 0"
    src_ctrl.rbt().add(channelBlockId(g, block_a));
    std::printf("RBT after salvage: %zu recycled block(s)\n",
                src_ctrl.rbt().size());
    ChannelBlockId repl = src_ctrl.rbt().take();
    src_ctrl.srt().insert(channelBlockId(g, block_d), repl);
    std::printf("SRT: D(way%u,blk%u) -> A(way%u,blk%u); active "
                "entries: %zu\n",
                block_d.way, block_d.block, block_a.way, block_a.block,
                src_ctrl.srt().activeEntries());
    PhysAddr probe = block_d;
    probe.page = 9;
    PhysAddr redirected = src_ctrl.remap(probe);
    std::printf("FTL accesses (way%u,blk%u,pg%u); hardware redirects "
                "to (way%u,blk%u,pg%u) — FTL never knows.\n",
                probe.way, probe.block, probe.page, redirected.way,
                redirected.block, redirected.page);
    return 0;
}
