/**
 * @file
 * Trace replay: runs a named workload synthesizer (or a user-supplied
 * trace file in "<ts_us> <R|W> <offset> <bytes>" format) through any
 * architecture and prints the latency profile.
 *
 * Usage:
 *   trace_replay [trace-name|path/to/trace.txt] [arch]
 *     trace-name: prn_0, src1_2, usr_2, hm_1, ... (default prn_0)
 *     arch      : baseline | bw | dssd | dssd_b | dssd_f (default)
 */

#include <cstdio>
#include <cstring>
#include <memory>

#include "core/gc.hh"
#include "core/ssd.hh"
#include "hil/driver.hh"

using namespace dssd;

namespace
{

ArchKind
parseArch(const char *s)
{
    if (!std::strcmp(s, "baseline"))
        return ArchKind::Baseline;
    if (!std::strcmp(s, "bw"))
        return ArchKind::BW;
    if (!std::strcmp(s, "dssd"))
        return ArchKind::DSSD;
    if (!std::strcmp(s, "dssd_b"))
        return ArchKind::DSSDBus;
    if (!std::strcmp(s, "dssd_f"))
        return ArchKind::DSSDNoc;
    fatal("unknown arch '%s'", s);
}

} // namespace

int
main(int argc, char **argv)
{
    const char *trace = argc > 1 ? argv[1] : "prn_0";
    ArchKind arch = argc > 2 ? parseArch(argv[2]) : ArchKind::DSSDNoc;

    SsdConfig config = makeConfig(arch);
    config.geom.ways = 4;
    config.geom.blocksPerPlane = 16;
    config.geom.pagesPerBlock = 16;
    Engine engine;
    Ssd ssd(engine, config);
    ssd.prefill(0.8, 0.3);

    std::unique_ptr<Generator> gen;
    if (std::strchr(trace, '/') || std::strstr(trace, ".txt")) {
        gen = std::make_unique<TraceFileLoader>(trace);
        std::printf("replaying trace file %s on %s\n", trace,
                    archName(arch));
    } else {
        TraceProfile prof = traceProfile(trace);
        std::uint64_t footprint =
            ssd.mapping().lpnCount() * config.geom.pageBytes / 2;
        gen = std::make_unique<TraceSynthesizer>(prof, footprint, 4000);
        std::printf("synthesizing %s (%.0f%% reads, ~%llu KB writes) "
                    "on %s\n",
                    trace, 100 * prof.readRatio,
                    static_cast<unsigned long long>(prof.writeBytes /
                                                    kKiB),
                    archName(arch));
    }

    QueueDriver driver(
        engine, *gen,
        [&ssd](const IoRequest &req, Engine::Callback done) {
            ssd.submit(req, std::move(done));
        },
        64);
    driver.start();
    // Background GC pressure, as in the paper's trace runs.
    ssd.gc().forceAll(1, [] {});
    engine.run();

    std::printf("\nrequests completed : %llu\n",
                static_cast<unsigned long long>(driver.completed()));
    std::printf("reads / writes     : %llu / %llu\n",
                static_cast<unsigned long long>(
                    driver.readLatency().count()),
                static_cast<unsigned long long>(
                    driver.writeLatency().count()));
    std::printf("avg latency        : %s\n",
                formatLatency(driver.allLatency().mean()).c_str());
    std::printf("p50 / p99 / p99.9  : %s / %s / %s\n",
                formatLatency(driver.allLatency().percentile(50)).c_str(),
                formatLatency(driver.allLatency().percentile(99)).c_str(),
                formatLatency(
                    driver.allLatency().percentile(99.9)).c_str());
    std::printf("I/O bandwidth      : %s\n",
                formatBandwidth(
                    driver.ioBytes().averageRate(0, engine.now()))
                    .c_str());
    std::printf("GC pages moved     : %llu, WAF %.2f\n",
                static_cast<unsigned long long>(ssd.gc().pagesMoved()),
                ssd.mapping().waf());
    return 0;
}
