/**
 * @file
 * Quickstart: build a decoupled SSD (dSSD_f), run a mixed synthetic
 * workload at queue depth 64, and print the headline statistics.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/gc.hh"
#include "core/ssd.hh"
#include "hil/driver.hh"

using namespace dssd;

int
main()
{
    // 1. Configure the SSD. makeConfig() gives the Table 1/2 defaults;
    //    we shrink capacity so the demo finishes in a second.
    SsdConfig config = makeConfig(ArchKind::DSSDNoc);
    config.geom.blocksPerPlane = 16;
    config.geom.pagesPerBlock = 16;

    // 2. Create the event engine and the device, and pre-fill it so
    //    garbage collection has work to do.
    Engine engine;
    Ssd ssd(engine, config);
    ssd.prefill(/*fill=*/0.8, /*invalid=*/0.3);

    std::printf("dSSD quickstart: %s, %u channels x %u ways x %u "
                "planes, %.1f MiB raw\n",
                archName(config.arch), config.geom.channels,
                config.geom.ways, config.geom.planesPerDie,
                static_cast<double>(config.geom.capacityBytes()) / kMiB);

    // 3. Describe a workload: 70/30 random read/write mix of 8 KB
    //    requests.
    SyntheticParams wl;
    wl.readRatio = 0.7;
    wl.sequential = false;
    wl.requestBytes = 8 * kKiB;
    wl.footprintBytes = ssd.mapping().lpnCount() *
                        config.geom.pageBytes / 2;
    wl.count = 2000;
    SyntheticGenerator gen(wl);

    // 4. Pump it through the host interface at queue depth 64.
    QueueDriver driver(
        engine, gen,
        [&ssd](const IoRequest &req, Engine::Callback done) {
            ssd.submit(req, std::move(done));
        },
        /*queue_depth=*/64);
    driver.start();

    // 5. Kick one round of garbage collection to see the decoupled
    //    copyback path in action, then run to completion.
    ssd.gc().forceAll(/*victims_per_unit=*/1, [] {});
    engine.run();

    // 6. Report.
    std::printf("\ncompleted requests : %llu\n",
                static_cast<unsigned long long>(driver.completed()));
    std::printf("avg latency        : %s\n",
                formatLatency(driver.allLatency().mean()).c_str());
    std::printf("p99 latency        : %s\n",
                formatLatency(driver.allLatency().percentile(99)).c_str());
    std::printf("I/O bandwidth      : %s\n",
                formatBandwidth(driver.ioBytes().averageRate(
                                    0, engine.now()))
                    .c_str());
    std::printf("GC pages moved     : %llu (all via global copyback)\n",
                static_cast<unsigned long long>(ssd.gc().pagesMoved()));
    std::printf("system-bus GC bytes: %llu  <-- decoupling at work\n",
                static_cast<unsigned long long>(
                    ssd.systemBus().channel().bytesMoved(tagGc)));
    std::printf("fNoC packets       : %llu\n",
                static_cast<unsigned long long>(
                    ssd.noc()->packetsDelivered()));
    return 0;
}
