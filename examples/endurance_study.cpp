/**
 * @file
 * Endurance study: compares the four superblock-management schemes
 * (BASELINE / RECYCLED / RESERV / WAS) under the block-wear variation
 * model and prints the lifetime curves and summary gains.
 */

#include <cstdio>

#include "reliability/endurance.hh"

using namespace dssd;

int
main()
{
    EnduranceParams base;
    base.channels = 8;
    base.superblocks = 1024;
    base.pagesPerBlock = 32;
    base.pageBytes = 16 * kKiB;
    base.wear.peMean = 1000.0;  // scaled; sigma/mean matches Table 1
    base.wear.peSigma = 148.0;
    base.reservedFraction = 0.07;
    base.stopBadFraction = 0.5;

    std::printf("Dynamic superblock endurance study\n");
    std::printf("%u superblocks x %u channels, P/E ~ N(%.0f, %.0f)\n\n",
                base.superblocks, base.channels, base.wear.peMean,
                base.wear.peSigma);

    double baseline_first = 0, baseline_l10 = 0;
    std::printf("%-10s  %14s  %16s  %12s  %10s\n", "scheme",
                "first bad (TB)", "10%%-bad life (TB)", "remaps",
                "SRT peak");
    for (SuperblockScheme s :
         {SuperblockScheme::Baseline, SuperblockScheme::Recycled,
          SuperblockScheme::Reserv, SuperblockScheme::Was}) {
        EnduranceParams p = base;
        p.scheme = s;
        EnduranceResult r = EnduranceSim(p).run();
        double first = r.dataUntilFirstBad() / 1e12;
        double l10 =
            r.dataUntilBadFraction(0.10, p.superblocks) / 1e12;
        if (s == SuperblockScheme::Baseline) {
            baseline_first = first;
            baseline_l10 = l10;
        }
        std::printf("%-10s  %14.3f  %16.3f  %12llu  %10zu\n",
                    schemeName(s), first, l10,
                    static_cast<unsigned long long>(r.remapEvents),
                    r.srtHighWater);
    }

    std::printf("\ninterpretation:\n");
    EnduranceParams p = base;
    p.scheme = SuperblockScheme::Recycled;
    EnduranceResult rec = EnduranceSim(p).run();
    p.scheme = SuperblockScheme::Reserv;
    EnduranceResult res = EnduranceSim(p).run();
    std::printf("  RECYCLED extends 10%%-bad lifetime by %.1f%% over "
                "BASELINE\n",
                100 * (rec.dataUntilBadFraction(0.10, base.superblocks) /
                           1e12 / baseline_l10 -
                       1));
    std::printf("  RESERV delays the first bad superblock by %.1f%%\n",
                100 * (res.dataUntilFirstBad() / 1e12 / baseline_first -
                       1));
    std::printf("  (paper: ~19%%/35%% endurance, ~65%% first-bad delay; "
                "WAS is the software upper bound)\n");
    return 0;
}
