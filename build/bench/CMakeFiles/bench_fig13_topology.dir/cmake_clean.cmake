file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_topology.dir/fig13_topology.cc.o"
  "CMakeFiles/bench_fig13_topology.dir/fig13_topology.cc.o.d"
  "CMakeFiles/bench_fig13_topology.dir/harness.cc.o"
  "CMakeFiles/bench_fig13_topology.dir/harness.cc.o.d"
  "bench_fig13_topology"
  "bench_fig13_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
