file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_bwsweep.dir/fig08_bwsweep.cc.o"
  "CMakeFiles/bench_fig08_bwsweep.dir/fig08_bwsweep.cc.o.d"
  "CMakeFiles/bench_fig08_bwsweep.dir/harness.cc.o"
  "CMakeFiles/bench_fig08_bwsweep.dir/harness.cc.o.d"
  "bench_fig08_bwsweep"
  "bench_fig08_bwsweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_bwsweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
