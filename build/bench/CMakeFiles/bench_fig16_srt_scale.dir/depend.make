# Empty dependencies file for bench_fig16_srt_scale.
# This may be replaced when dependencies are built.
