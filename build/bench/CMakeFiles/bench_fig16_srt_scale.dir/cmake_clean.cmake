file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_srt_scale.dir/fig16_srt_scale.cc.o"
  "CMakeFiles/bench_fig16_srt_scale.dir/fig16_srt_scale.cc.o.d"
  "CMakeFiles/bench_fig16_srt_scale.dir/harness.cc.o"
  "CMakeFiles/bench_fig16_srt_scale.dir/harness.cc.o.d"
  "bench_fig16_srt_scale"
  "bench_fig16_srt_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_srt_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
