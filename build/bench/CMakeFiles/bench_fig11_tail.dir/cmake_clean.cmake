file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_tail.dir/fig11_tail.cc.o"
  "CMakeFiles/bench_fig11_tail.dir/fig11_tail.cc.o.d"
  "CMakeFiles/bench_fig11_tail.dir/harness.cc.o"
  "CMakeFiles/bench_fig11_tail.dir/harness.cc.o.d"
  "bench_fig11_tail"
  "bench_fig11_tail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_tail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
