# Empty dependencies file for bench_fig11_tail.
# This may be replaced when dependencies are built.
