# Empty dependencies file for bench_abl_copyback.
# This may be replaced when dependencies are built.
