file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_copyback.dir/abl_copyback.cc.o"
  "CMakeFiles/bench_abl_copyback.dir/abl_copyback.cc.o.d"
  "CMakeFiles/bench_abl_copyback.dir/harness.cc.o"
  "CMakeFiles/bench_abl_copyback.dir/harness.cc.o.d"
  "bench_abl_copyback"
  "bench_abl_copyback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_copyback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
