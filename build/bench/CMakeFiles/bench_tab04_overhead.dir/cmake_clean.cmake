file(REMOVE_RECURSE
  "CMakeFiles/bench_tab04_overhead.dir/harness.cc.o"
  "CMakeFiles/bench_tab04_overhead.dir/harness.cc.o.d"
  "CMakeFiles/bench_tab04_overhead.dir/tab04_overhead.cc.o"
  "CMakeFiles/bench_tab04_overhead.dir/tab04_overhead.cc.o.d"
  "bench_tab04_overhead"
  "bench_tab04_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab04_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
