file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_lifetime.dir/fig14_lifetime.cc.o"
  "CMakeFiles/bench_fig14_lifetime.dir/fig14_lifetime.cc.o.d"
  "CMakeFiles/bench_fig14_lifetime.dir/harness.cc.o"
  "CMakeFiles/bench_fig14_lifetime.dir/harness.cc.o.d"
  "bench_fig14_lifetime"
  "bench_fig14_lifetime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
