file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_srt.dir/fig15_srt.cc.o"
  "CMakeFiles/bench_fig15_srt.dir/fig15_srt.cc.o.d"
  "CMakeFiles/bench_fig15_srt.dir/harness.cc.o"
  "CMakeFiles/bench_fig15_srt.dir/harness.cc.o.d"
  "bench_fig15_srt"
  "bench_fig15_srt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_srt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
