# Empty dependencies file for bench_fig15_srt.
# This may be replaced when dependencies are built.
