# Empty dependencies file for bench_fig07_main.
# This may be replaced when dependencies are built.
