file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_main.dir/fig07_main.cc.o"
  "CMakeFiles/bench_fig07_main.dir/fig07_main.cc.o.d"
  "CMakeFiles/bench_fig07_main.dir/harness.cc.o"
  "CMakeFiles/bench_fig07_main.dir/harness.cc.o.d"
  "bench_fig07_main"
  "bench_fig07_main.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_main.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
