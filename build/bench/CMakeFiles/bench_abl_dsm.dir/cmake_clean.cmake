file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_dsm.dir/abl_dsm.cc.o"
  "CMakeFiles/bench_abl_dsm.dir/abl_dsm.cc.o.d"
  "CMakeFiles/bench_abl_dsm.dir/harness.cc.o"
  "CMakeFiles/bench_abl_dsm.dir/harness.cc.o.d"
  "bench_abl_dsm"
  "bench_abl_dsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_dsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
