# Empty dependencies file for bench_abl_dsm.
# This may be replaced when dependencies are built.
