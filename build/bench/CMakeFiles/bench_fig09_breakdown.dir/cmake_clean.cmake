file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_breakdown.dir/fig09_breakdown.cc.o"
  "CMakeFiles/bench_fig09_breakdown.dir/fig09_breakdown.cc.o.d"
  "CMakeFiles/bench_fig09_breakdown.dir/harness.cc.o"
  "CMakeFiles/bench_fig09_breakdown.dir/harness.cc.o.d"
  "bench_fig09_breakdown"
  "bench_fig09_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
