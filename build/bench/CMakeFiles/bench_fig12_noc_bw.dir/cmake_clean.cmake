file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_noc_bw.dir/fig12_noc_bw.cc.o"
  "CMakeFiles/bench_fig12_noc_bw.dir/fig12_noc_bw.cc.o.d"
  "CMakeFiles/bench_fig12_noc_bw.dir/harness.cc.o"
  "CMakeFiles/bench_fig12_noc_bw.dir/harness.cc.o.d"
  "bench_fig12_noc_bw"
  "bench_fig12_noc_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_noc_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
