file(REMOVE_RECURSE
  "CMakeFiles/bench_tab02_configs.dir/harness.cc.o"
  "CMakeFiles/bench_tab02_configs.dir/harness.cc.o.d"
  "CMakeFiles/bench_tab02_configs.dir/tab02_configs.cc.o"
  "CMakeFiles/bench_tab02_configs.dir/tab02_configs.cc.o.d"
  "bench_tab02_configs"
  "bench_tab02_configs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab02_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
