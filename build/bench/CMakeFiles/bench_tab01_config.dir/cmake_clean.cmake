file(REMOVE_RECURSE
  "CMakeFiles/bench_tab01_config.dir/harness.cc.o"
  "CMakeFiles/bench_tab01_config.dir/harness.cc.o.d"
  "CMakeFiles/bench_tab01_config.dir/tab01_config.cc.o"
  "CMakeFiles/bench_tab01_config.dir/tab01_config.cc.o.d"
  "bench_tab01_config"
  "bench_tab01_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab01_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
