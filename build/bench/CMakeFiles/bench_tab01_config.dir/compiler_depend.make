# Empty compiler generated dependencies file for bench_tab01_config.
# This may be replaced when dependencies are built.
