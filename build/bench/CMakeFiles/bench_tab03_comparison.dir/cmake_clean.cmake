file(REMOVE_RECURSE
  "CMakeFiles/bench_tab03_comparison.dir/harness.cc.o"
  "CMakeFiles/bench_tab03_comparison.dir/harness.cc.o.d"
  "CMakeFiles/bench_tab03_comparison.dir/tab03_comparison.cc.o"
  "CMakeFiles/bench_tab03_comparison.dir/tab03_comparison.cc.o.d"
  "bench_tab03_comparison"
  "bench_tab03_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab03_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
