# Empty dependencies file for bench_fig10_dramhit.
# This may be replaced when dependencies are built.
