file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_dramhit.dir/fig10_dramhit.cc.o"
  "CMakeFiles/bench_fig10_dramhit.dir/fig10_dramhit.cc.o.d"
  "CMakeFiles/bench_fig10_dramhit.dir/harness.cc.o"
  "CMakeFiles/bench_fig10_dramhit.dir/harness.cc.o.d"
  "bench_fig10_dramhit"
  "bench_fig10_dramhit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_dramhit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
