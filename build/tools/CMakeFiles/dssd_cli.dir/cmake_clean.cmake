file(REMOVE_RECURSE
  "CMakeFiles/dssd_cli.dir/__/bench/harness.cc.o"
  "CMakeFiles/dssd_cli.dir/__/bench/harness.cc.o.d"
  "CMakeFiles/dssd_cli.dir/dssd_sim.cc.o"
  "CMakeFiles/dssd_cli.dir/dssd_sim.cc.o.d"
  "dssd_sim"
  "dssd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dssd_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
