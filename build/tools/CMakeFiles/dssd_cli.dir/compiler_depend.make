# Empty compiler generated dependencies file for dssd_cli.
# This may be replaced when dependencies are built.
