# Empty compiler generated dependencies file for global_copyback.
# This may be replaced when dependencies are built.
