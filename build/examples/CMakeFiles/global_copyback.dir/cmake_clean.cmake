file(REMOVE_RECURSE
  "CMakeFiles/global_copyback.dir/global_copyback.cpp.o"
  "CMakeFiles/global_copyback.dir/global_copyback.cpp.o.d"
  "global_copyback"
  "global_copyback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/global_copyback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
