# Empty compiler generated dependencies file for gc_interference.
# This may be replaced when dependencies are built.
