file(REMOVE_RECURSE
  "CMakeFiles/gc_interference.dir/gc_interference.cpp.o"
  "CMakeFiles/gc_interference.dir/gc_interference.cpp.o.d"
  "gc_interference"
  "gc_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
