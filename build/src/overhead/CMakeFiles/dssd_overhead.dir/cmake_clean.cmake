file(REMOVE_RECURSE
  "CMakeFiles/dssd_overhead.dir/area.cc.o"
  "CMakeFiles/dssd_overhead.dir/area.cc.o.d"
  "libdssd_overhead.a"
  "libdssd_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dssd_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
