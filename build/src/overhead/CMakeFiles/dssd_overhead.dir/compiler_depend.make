# Empty compiler generated dependencies file for dssd_overhead.
# This may be replaced when dependencies are built.
