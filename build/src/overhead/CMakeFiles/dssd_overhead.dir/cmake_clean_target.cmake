file(REMOVE_RECURSE
  "libdssd_overhead.a"
)
