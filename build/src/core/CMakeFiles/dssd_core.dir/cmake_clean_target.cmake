file(REMOVE_RECURSE
  "libdssd_core.a"
)
