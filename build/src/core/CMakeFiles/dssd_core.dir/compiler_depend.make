# Empty compiler generated dependencies file for dssd_core.
# This may be replaced when dependencies are built.
