file(REMOVE_RECURSE
  "CMakeFiles/dssd_core.dir/config.cc.o"
  "CMakeFiles/dssd_core.dir/config.cc.o.d"
  "CMakeFiles/dssd_core.dir/dsm.cc.o"
  "CMakeFiles/dssd_core.dir/dsm.cc.o.d"
  "CMakeFiles/dssd_core.dir/gc.cc.o"
  "CMakeFiles/dssd_core.dir/gc.cc.o.d"
  "CMakeFiles/dssd_core.dir/ssd.cc.o"
  "CMakeFiles/dssd_core.dir/ssd.cc.o.d"
  "libdssd_core.a"
  "libdssd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dssd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
