# Empty compiler generated dependencies file for dssd_sim.
# This may be replaced when dependencies are built.
