file(REMOVE_RECURSE
  "libdssd_sim.a"
)
