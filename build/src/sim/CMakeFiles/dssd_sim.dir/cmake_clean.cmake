file(REMOVE_RECURSE
  "CMakeFiles/dssd_sim.dir/engine.cc.o"
  "CMakeFiles/dssd_sim.dir/engine.cc.o.d"
  "CMakeFiles/dssd_sim.dir/log.cc.o"
  "CMakeFiles/dssd_sim.dir/log.cc.o.d"
  "CMakeFiles/dssd_sim.dir/resource.cc.o"
  "CMakeFiles/dssd_sim.dir/resource.cc.o.d"
  "CMakeFiles/dssd_sim.dir/stats.cc.o"
  "CMakeFiles/dssd_sim.dir/stats.cc.o.d"
  "libdssd_sim.a"
  "libdssd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dssd_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
