# Empty compiler generated dependencies file for dssd_workload.
# This may be replaced when dependencies are built.
