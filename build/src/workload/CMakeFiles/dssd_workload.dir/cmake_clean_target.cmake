file(REMOVE_RECURSE
  "libdssd_workload.a"
)
