file(REMOVE_RECURSE
  "CMakeFiles/dssd_workload.dir/generator.cc.o"
  "CMakeFiles/dssd_workload.dir/generator.cc.o.d"
  "libdssd_workload.a"
  "libdssd_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dssd_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
