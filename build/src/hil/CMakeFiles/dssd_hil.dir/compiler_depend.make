# Empty compiler generated dependencies file for dssd_hil.
# This may be replaced when dependencies are built.
