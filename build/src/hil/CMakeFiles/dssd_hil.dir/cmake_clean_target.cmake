file(REMOVE_RECURSE
  "libdssd_hil.a"
)
