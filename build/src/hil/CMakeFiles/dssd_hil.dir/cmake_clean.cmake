file(REMOVE_RECURSE
  "CMakeFiles/dssd_hil.dir/driver.cc.o"
  "CMakeFiles/dssd_hil.dir/driver.cc.o.d"
  "libdssd_hil.a"
  "libdssd_hil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dssd_hil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
