file(REMOVE_RECURSE
  "CMakeFiles/dssd_noc.dir/network.cc.o"
  "CMakeFiles/dssd_noc.dir/network.cc.o.d"
  "CMakeFiles/dssd_noc.dir/topology.cc.o"
  "CMakeFiles/dssd_noc.dir/topology.cc.o.d"
  "libdssd_noc.a"
  "libdssd_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dssd_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
