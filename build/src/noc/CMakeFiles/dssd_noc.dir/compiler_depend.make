# Empty compiler generated dependencies file for dssd_noc.
# This may be replaced when dependencies are built.
