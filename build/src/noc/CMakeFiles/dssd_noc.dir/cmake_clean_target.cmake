file(REMOVE_RECURSE
  "libdssd_noc.a"
)
