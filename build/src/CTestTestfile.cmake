# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("nand")
subdirs("bus")
subdirs("noc")
subdirs("ecc")
subdirs("controller")
subdirs("ftl")
subdirs("hil")
subdirs("workload")
subdirs("reliability")
subdirs("overhead")
subdirs("core")
