file(REMOVE_RECURSE
  "libdssd_ecc.a"
)
