# Empty dependencies file for dssd_ecc.
# This may be replaced when dependencies are built.
