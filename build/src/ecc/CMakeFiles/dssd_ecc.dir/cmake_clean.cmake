file(REMOVE_RECURSE
  "CMakeFiles/dssd_ecc.dir/ecc.cc.o"
  "CMakeFiles/dssd_ecc.dir/ecc.cc.o.d"
  "libdssd_ecc.a"
  "libdssd_ecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dssd_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
