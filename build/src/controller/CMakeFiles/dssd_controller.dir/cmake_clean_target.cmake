file(REMOVE_RECURSE
  "libdssd_controller.a"
)
