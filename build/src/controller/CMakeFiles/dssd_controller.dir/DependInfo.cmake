
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/controller/channel.cc" "src/controller/CMakeFiles/dssd_controller.dir/channel.cc.o" "gcc" "src/controller/CMakeFiles/dssd_controller.dir/channel.cc.o.d"
  "/root/repo/src/controller/decoupled.cc" "src/controller/CMakeFiles/dssd_controller.dir/decoupled.cc.o" "gcc" "src/controller/CMakeFiles/dssd_controller.dir/decoupled.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dssd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/nand/CMakeFiles/dssd_nand.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/dssd_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/dssd_ecc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
