# Empty dependencies file for dssd_controller.
# This may be replaced when dependencies are built.
