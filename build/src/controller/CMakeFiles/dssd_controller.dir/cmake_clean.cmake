file(REMOVE_RECURSE
  "CMakeFiles/dssd_controller.dir/channel.cc.o"
  "CMakeFiles/dssd_controller.dir/channel.cc.o.d"
  "CMakeFiles/dssd_controller.dir/decoupled.cc.o"
  "CMakeFiles/dssd_controller.dir/decoupled.cc.o.d"
  "libdssd_controller.a"
  "libdssd_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dssd_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
