# Empty dependencies file for dssd_reliability.
# This may be replaced when dependencies are built.
