file(REMOVE_RECURSE
  "libdssd_reliability.a"
)
