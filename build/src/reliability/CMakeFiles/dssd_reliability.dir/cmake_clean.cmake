file(REMOVE_RECURSE
  "CMakeFiles/dssd_reliability.dir/endurance.cc.o"
  "CMakeFiles/dssd_reliability.dir/endurance.cc.o.d"
  "libdssd_reliability.a"
  "libdssd_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dssd_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
