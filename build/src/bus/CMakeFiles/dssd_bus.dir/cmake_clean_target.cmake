file(REMOVE_RECURSE
  "libdssd_bus.a"
)
