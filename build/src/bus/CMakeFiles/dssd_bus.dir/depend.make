# Empty dependencies file for dssd_bus.
# This may be replaced when dependencies are built.
