file(REMOVE_RECURSE
  "CMakeFiles/dssd_bus.dir/system_bus.cc.o"
  "CMakeFiles/dssd_bus.dir/system_bus.cc.o.d"
  "libdssd_bus.a"
  "libdssd_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dssd_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
