# Empty compiler generated dependencies file for dssd_bus.
# This may be replaced when dependencies are built.
