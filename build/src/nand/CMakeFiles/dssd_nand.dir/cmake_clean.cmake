file(REMOVE_RECURSE
  "CMakeFiles/dssd_nand.dir/die.cc.o"
  "CMakeFiles/dssd_nand.dir/die.cc.o.d"
  "libdssd_nand.a"
  "libdssd_nand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dssd_nand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
