# Empty compiler generated dependencies file for dssd_nand.
# This may be replaced when dependencies are built.
