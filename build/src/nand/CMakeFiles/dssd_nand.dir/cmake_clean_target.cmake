file(REMOVE_RECURSE
  "libdssd_nand.a"
)
