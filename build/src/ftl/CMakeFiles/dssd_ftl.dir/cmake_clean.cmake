file(REMOVE_RECURSE
  "CMakeFiles/dssd_ftl.dir/mapping.cc.o"
  "CMakeFiles/dssd_ftl.dir/mapping.cc.o.d"
  "CMakeFiles/dssd_ftl.dir/superblock.cc.o"
  "CMakeFiles/dssd_ftl.dir/superblock.cc.o.d"
  "CMakeFiles/dssd_ftl.dir/writebuffer.cc.o"
  "CMakeFiles/dssd_ftl.dir/writebuffer.cc.o.d"
  "libdssd_ftl.a"
  "libdssd_ftl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dssd_ftl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
