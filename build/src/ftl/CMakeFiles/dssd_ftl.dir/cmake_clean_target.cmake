file(REMOVE_RECURSE
  "libdssd_ftl.a"
)
