# Empty compiler generated dependencies file for dssd_ftl.
# This may be replaced when dependencies are built.
