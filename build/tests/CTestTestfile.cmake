# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_nand[1]_include.cmake")
include("/root/repo/build/tests/test_bus[1]_include.cmake")
include("/root/repo/build/tests/test_noc[1]_include.cmake")
include("/root/repo/build/tests/test_ecc[1]_include.cmake")
include("/root/repo/build/tests/test_controller[1]_include.cmake")
include("/root/repo/build/tests/test_ftl[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_hil[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_reliability[1]_include.cmake")
include("/root/repo/build/tests/test_overhead[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
