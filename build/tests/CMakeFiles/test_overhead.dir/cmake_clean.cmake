file(REMOVE_RECURSE
  "CMakeFiles/test_overhead.dir/overhead/area_test.cc.o"
  "CMakeFiles/test_overhead.dir/overhead/area_test.cc.o.d"
  "test_overhead"
  "test_overhead.pdb"
  "test_overhead[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
