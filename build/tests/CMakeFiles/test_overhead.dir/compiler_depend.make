# Empty compiler generated dependencies file for test_overhead.
# This may be replaced when dependencies are built.
