file(REMOVE_RECURSE
  "CMakeFiles/test_hil.dir/hil/driver_test.cc.o"
  "CMakeFiles/test_hil.dir/hil/driver_test.cc.o.d"
  "test_hil"
  "test_hil.pdb"
  "test_hil[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
