# Empty compiler generated dependencies file for test_hil.
# This may be replaced when dependencies are built.
