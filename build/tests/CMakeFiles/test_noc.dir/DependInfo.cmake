
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/noc/network_test.cc" "tests/CMakeFiles/test_noc.dir/noc/network_test.cc.o" "gcc" "tests/CMakeFiles/test_noc.dir/noc/network_test.cc.o.d"
  "/root/repo/tests/noc/topology_test.cc" "tests/CMakeFiles/test_noc.dir/noc/topology_test.cc.o" "gcc" "tests/CMakeFiles/test_noc.dir/noc/topology_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dssd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/reliability/CMakeFiles/dssd_reliability.dir/DependInfo.cmake"
  "/root/repo/build/src/overhead/CMakeFiles/dssd_overhead.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/dssd_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/controller/CMakeFiles/dssd_controller.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/dssd_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/dssd_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/ftl/CMakeFiles/dssd_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/nand/CMakeFiles/dssd_nand.dir/DependInfo.cmake"
  "/root/repo/build/src/hil/CMakeFiles/dssd_hil.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dssd_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dssd_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
